"""Pin the deprecated ablation shims byte-identical to the old tables.

The legacy hand-rolled A1/A2/A4 grid code is reproduced inline here
(frozen as it stood before the study-engine migration) and its rendered
tables compared byte-for-byte against what the shims — now forwarding to
:mod:`repro.experiments.study.ablations` — emit for the same fixed-seed
inputs.  Any drift in titles, headers, row values, or formatting fails.
"""

import warnings

import numpy as np
import pytest

from repro.experiments import Campaign, ExperimentConfig, Policy, Scenario
from repro.experiments import ablations
from repro.experiments.report import TextTable

TINY = ExperimentConfig.tiny()


def _run(scenarios):
    return Campaign().run(scenarios).results


def _render(title, headers, rows):
    table = TextTable(headers, title=title)
    for row in rows:
        table.add_row(*row)
    return table.render()


# -- frozen pre-migration reference implementations ---------------------------


def _legacy_bands(base, band_counts):
    cfg = base.replace(placement_index=1)
    scenarios = [Scenario(config=cfg.replace(policy=Policy.FIFO))]
    scenarios += [
        Scenario(config=cfg.replace(policy=Policy.TLS_ONE, max_bands=n))
        for n in band_counts
    ]
    fifo, *tls = _run(scenarios)
    rows = [("fifo", "-", fifo.avg_jct, 1.0,
             float(np.median(fifo.barrier_wait_variances())))]
    for n, res in zip(band_counts, tls):
        rows.append(
            ("tls-one", n, res.avg_jct, res.avg_jct / fifo.avg_jct,
             float(np.median(res.barrier_wait_variances())))
        )
    return _render(
        "A1: priority-band budget (placement #1)",
        ["Policy", "Bands", "Avg JCT (s)", "Norm JCT", "Median barrier var"],
        rows,
    )


def _legacy_interval(base, intervals):
    cfg = base.replace(placement_index=1)
    scenarios = [
        Scenario(config=cfg.replace(policy=Policy.FIFO)),
        Scenario(config=cfg.replace(policy=Policy.TLS_ONE)),
    ]
    scenarios += [
        Scenario(config=cfg.replace(policy=Policy.TLS_RR, tls_interval=T))
        for T in intervals
    ]
    fifo, one, *rr = _run(scenarios)

    def spread(res):
        return float(np.std(list(res.jcts.values())))

    rows = [
        ("fifo", "-", fifo.avg_jct, 1.0, spread(fifo)),
        ("tls-one", "-", one.avg_jct, one.avg_jct / fifo.avg_jct,
         spread(one)),
    ]
    for T, res in zip(intervals, rr):
        rows.append(
            ("tls-rr", T, res.avg_jct, res.avg_jct / fifo.avg_jct,
             spread(res))
        )
    return _render(
        "A2: TLs-RR rotation interval T (placement #1)",
        ["Policy", "T (s)", "Avg JCT (s)", "Norm JCT", "JCT spread (std)"],
        rows,
    )


def _legacy_fair_queue(base):
    cfg = base.replace(placement_index=1)
    policies = (Policy.FIFO, Policy.DRR, Policy.TLS_ONE)
    results = _run([Scenario(config=cfg.replace(policy=p)) for p in policies])
    fifo = results[0]
    rows = [
        (policy.value, res.avg_jct, res.avg_jct / fifo.avg_jct,
         float(np.median(res.barrier_wait_variances())))
        for policy, res in zip(policies, results)
    ]
    return _render(
        "A4: fair queueing is not enough (placement #1)",
        ["Policy", "Avg JCT (s)", "Norm JCT", "Median barrier var"],
        rows,
    )


# -- byte-identity pins -------------------------------------------------------


def _shimmed(fn, *args, **kwargs):
    with pytest.warns(DeprecationWarning, match="deprecated"):
        return fn(*args, **kwargs)


def test_bands_shim_byte_identical():
    result = _shimmed(ablations.bands, TINY, band_counts=(1, 4))
    assert result.render() == _legacy_bands(TINY, (1, 4))


def test_interval_shim_byte_identical():
    result = _shimmed(ablations.interval, TINY, intervals=(0.5, 2.0))
    assert result.render() == _legacy_interval(TINY, (0.5, 2.0))


def test_fair_queue_shim_byte_identical():
    result = _shimmed(ablations.fair_queue, TINY)
    assert result.render() == _legacy_fair_queue(TINY)


def test_every_shim_warns_and_forwards():
    from repro.experiments.study import ablations as study_ablations

    for name in ("bands", "interval", "transport", "fair_queue", "ps_aware",
                 "rate_control", "async_mode", "multi_ps", "compression",
                 "adaptive"):
        shim = getattr(ablations, name)
        assert shim.__wrapped__ is getattr(study_ablations, name)


def test_ablation_result_csv_matches_render_cells():
    result = _shimmed(ablations.fair_queue, TINY)
    csv_lines = result.to_csv().splitlines()
    assert csv_lines[0] == ",".join(result.headers)
    assert len(csv_lines) == 1 + len(result.rows)


def test_shim_module_import_is_silent():
    # Importing the legacy module must not warn; only calls do.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        import importlib

        import repro.experiments.ablations as mod

        importlib.reload(mod)
