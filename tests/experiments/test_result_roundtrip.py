"""Round-trip tests for the full ExperimentResult serialization.

The campaign's result cache stores results as JSON
(:func:`result_to_full_dict` / :func:`result_from_full_dict`); these
tests pin the contract: everything a figure generator reads — JCTs,
barrier statistics, utilization — survives the round trip exactly.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.export import (
    result_from_full_dict,
    result_to_full_dict,
)
from repro.telemetry import ActiveWindow

MICRO = ExperimentConfig.tiny(n_jobs=2, n_workers=2, iterations=3)


def _round_trip(result):
    # Through actual JSON text, as the on-disk cache stores it.
    return result_from_full_dict(json.loads(json.dumps(
        result_to_full_dict(result)
    )))


def test_round_trip_preserves_summary_stats():
    res = run_experiment(MICRO)
    back = _round_trip(res)
    assert back.config == res.config
    assert back.jcts == res.jcts
    assert back.avg_jct == res.avg_jct
    assert back.makespan == res.makespan
    assert back.sim_events == res.sim_events
    assert back.ps_host_of_job == res.ps_host_of_job
    assert back.tc_commands == res.tc_commands
    assert back.host_ids == res.host_ids


def test_round_trip_preserves_barrier_stats():
    res = run_experiment(MICRO)
    back = _round_trip(res)
    np.testing.assert_array_equal(back.barrier_wait_means(),
                                  res.barrier_wait_means())
    np.testing.assert_array_equal(back.barrier_wait_variances(),
                                  res.barrier_wait_variances())
    for job_id, m in res.metrics.items():
        assert back.metrics[job_id].jct == m.jct
        assert back.metrics[job_id].global_steps == m.global_steps


def test_round_trip_preserves_utilization_queries():
    res = run_experiment(
        MICRO.replace(sample_hosts=True, sample_interval=0.02)
    )
    back = _round_trip(res)
    assert set(back.samplers) == set(res.samplers)
    window = ActiveWindow(0.1 * res.makespan, 0.9 * res.makespan)
    for kind in ("cpu", "net_in", "net_out"):
        assert back.mean_utilization(res.host_ids, kind, window) == \
            res.mean_utilization(res.host_ids, kind, window)


def test_round_trip_preserves_worker_only_hosts():
    res = run_experiment(MICRO)
    back = _round_trip(res)
    assert back.worker_only_hosts() == res.worker_only_hosts()
    assert back.ps_hosts == res.ps_hosts


def test_round_trip_without_samplers_still_rejects_utilization():
    res = run_experiment(MICRO)  # sample_hosts=False
    back = _round_trip(res)
    window = ActiveWindow(0.0, res.makespan)
    with pytest.raises(ConfigError):
        back.mean_utilization(back.host_ids, "cpu", window)


def test_full_dict_rejects_unknown_version():
    res = run_experiment(MICRO)
    data = result_to_full_dict(res)
    data["full_schema_version"] = 999
    with pytest.raises(ConfigError):
        result_from_full_dict(data)
