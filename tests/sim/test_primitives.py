"""Unit tests for sim synchronization primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import AllOf, Barrier, Mailbox, Resource, Signal, Simulator, Timeout


# ---------------------------------------------------------------- Mailbox


def test_mailbox_put_then_get():
    sim = Simulator()
    mb = Mailbox(sim)
    got = []

    def consumer():
        got.append((yield mb.get()))

    mb.put("x")
    sim.spawn(consumer())
    sim.run()
    assert got == ["x"]


def test_mailbox_get_blocks_until_put():
    sim = Simulator()
    mb = Mailbox(sim)
    got = []

    def consumer():
        got.append(((yield mb.get()), sim.now))

    sim.spawn(consumer())
    sim.schedule(2.0, mb.put, ("late",))
    sim.run()
    assert got == [("late", 2.0)]


def test_mailbox_fifo_order_of_items():
    sim = Simulator()
    mb = Mailbox(sim)
    got = []

    def consumer():
        for _ in range(3):
            got.append((yield mb.get()))

    for i in range(3):
        mb.put(i)
    sim.spawn(consumer())
    sim.run()
    assert got == [0, 1, 2]


def test_mailbox_multiple_getters_served_fifo():
    sim = Simulator()
    mb = Mailbox(sim)
    got = []

    def consumer(name):
        got.append((name, (yield mb.get())))

    sim.spawn(consumer("first"))
    sim.spawn(consumer("second"))
    sim.schedule(1.0, mb.put, ("a",))
    sim.schedule(2.0, mb.put, ("b",))
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


def test_mailbox_try_get():
    sim = Simulator()
    mb = Mailbox(sim)
    assert mb.try_get() == (False, None)
    mb.put(9)
    assert mb.try_get() == (True, 9)
    assert len(mb) == 0


@given(st.lists(st.integers(), max_size=50))
def test_property_mailbox_preserves_order(items):
    sim = Simulator()
    mb = Mailbox(sim)
    got = []

    def consumer():
        for _ in items:
            got.append((yield mb.get()))

    for it in items:
        mb.put(it)
    sim.spawn(consumer())
    sim.run()
    assert got == items


# ---------------------------------------------------------------- Barrier


def test_barrier_releases_all_at_once():
    sim = Simulator()
    bar = Barrier(sim, 3)
    releases = []

    def member(delay):
        yield Timeout(delay)
        cycle = yield bar.wait()
        releases.append((sim.now, cycle))

    for d in (1.0, 2.0, 5.0):
        sim.spawn(member(d))
    sim.run()
    assert [t for t, _ in releases] == [5.0, 5.0, 5.0]
    assert {c for _, c in releases} == {0}


def test_barrier_is_cyclic():
    sim = Simulator()
    bar = Barrier(sim, 2)
    cycles = []

    def member():
        for _ in range(3):
            cycles.append((yield bar.wait()))

    sim.spawn(member())
    sim.spawn(member())
    sim.run()
    assert sorted(cycles) == [0, 0, 1, 1, 2, 2]
    assert bar.cycles == 3


def test_barrier_single_party_never_blocks():
    sim = Simulator()
    bar = Barrier(sim, 1)
    out = []

    def member():
        yield bar.wait()
        out.append(sim.now)

    sim.spawn(member())
    sim.run()
    assert out == [0.0]


def test_barrier_invalid_parties():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Barrier(sim, 0)


def test_barrier_n_waiting():
    sim = Simulator()
    bar = Barrier(sim, 2)

    def member():
        yield bar.wait()

    sim.spawn(member())
    sim.run()
    assert bar.n_waiting == 1


# ---------------------------------------------------------------- Resource


def test_resource_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def holder(name, hold):
        yield res.request()
        start = sim.now
        yield Timeout(hold)
        res.release()
        spans.append((name, start, sim.now))

    sim.spawn(holder("a", 2.0))
    sim.spawn(holder("b", 1.0))
    sim.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 3.0)]


def test_resource_capacity_two_runs_in_parallel():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def holder(name):
        yield res.request()
        yield Timeout(1.0)
        res.release()
        done.append((name, sim.now))

    for n in "abc":
        sim.spawn(holder(n))
    sim.run()
    assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]


def test_resource_release_idle_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=20))
def test_property_resource_never_exceeds_capacity(capacity, n_procs):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    concurrent = {"n": 0, "max": 0}

    def holder():
        yield res.request()
        concurrent["n"] += 1
        concurrent["max"] = max(concurrent["max"], concurrent["n"])
        yield Timeout(1.0)
        concurrent["n"] -= 1
        res.release()

    for _ in range(n_procs):
        sim.spawn(holder())
    sim.run()
    assert concurrent["max"] <= capacity
    assert concurrent["n"] == 0


# ---------------------------------------------------------------- Signal


def test_signal_wakes_all_waiters():
    sim = Simulator()
    sig = Signal()
    got = []

    def waiter(name):
        v = yield sig
        got.append((name, v, sim.now))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.schedule(3.0, sig.fire, ("done",))
    sim.run()
    assert got == [("a", "done", 3.0), ("b", "done", 3.0)]


def test_signal_after_fire_resumes_immediately():
    sim = Simulator()
    sig = Signal()
    sig.fire(7)
    got = []

    def waiter():
        got.append((yield sig))

    sim.spawn(waiter())
    sim.run()
    assert got == [7]


def test_signal_double_fire_raises():
    sig = Signal()
    sig.fire()
    with pytest.raises(SimulationError):
        sig.fire()


def test_process_on_exit_signal():
    sim = Simulator()
    sig = Signal()

    def work():
        yield Timeout(2.0)
        return "res"

    p = sim.spawn(work())
    p.on_exit(sig)
    got = []

    def waiter():
        got.append(((yield sig), sim.now))

    sim.spawn(waiter())
    sim.run()
    assert got == [("res", 2.0)]


def test_all_of_waits_for_every_signal():
    sim = Simulator()
    sigs = [Signal() for _ in range(3)]
    got = []

    def waiter():
        vals = yield AllOf(sigs)
        got.append((vals, sim.now))

    sim.spawn(waiter())
    sim.schedule(1.0, sigs[1].fire, ("b",))
    sim.schedule(2.0, sigs[0].fire, ("a",))
    sim.schedule(5.0, sigs[2].fire, ("c",))
    sim.run()
    assert got == [(["a", "b", "c"], 5.0)]


def test_all_of_with_already_fired_signals():
    sim = Simulator()
    sigs = [Signal(), Signal()]
    sigs[0].fire(1)
    sigs[1].fire(2)
    got = []

    def waiter():
        got.append((yield AllOf(sigs)))

    sim.spawn(waiter())
    sim.run()
    assert got == [[1, 2]]


def test_all_of_empty_list_resumes_immediately():
    sim = Simulator()
    got = []

    def waiter():
        got.append((yield AllOf([])))

    sim.spawn(waiter())
    sim.run()
    assert got == [[]]


def test_all_of_same_signal_twice():
    sim = Simulator()
    sig = Signal()
    got = []

    def waiter():
        got.append((yield AllOf([sig, sig])))

    sim.spawn(waiter())
    sim.schedule(1.0, sig.fire, ("v",))
    sim.run()
    assert got == [["v", "v"]]


def test_barrier_more_arrivals_than_parties_start_next_cycle():
    sim = Simulator()
    bar = Barrier(sim, 2)
    out = []

    def member(name):
        cycle = yield bar.wait()
        out.append((name, cycle))

    for n in "abc":
        sim.spawn(member(n))
    sim.run()
    # a+b complete cycle 0; c waits for a 4th member that never comes
    assert sorted(out) == [("a", 0), ("b", 0)]
    assert bar.n_waiting == 1


def test_resource_handoff_preserves_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(name, hold):
        yield res.request()
        order.append(name)
        yield Timeout(hold)
        res.release()

    for i in range(5):
        sim.spawn(holder(f"p{i}", 0.1))
    sim.run()
    assert order == [f"p{i}" for i in range(5)]
