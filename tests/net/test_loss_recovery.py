"""Tests for switch buffer limits, drops, RTO retransmission and AIMD."""

import pytest

from repro.net import Link, StarNetwork
from repro.net.addressing import FlowKey
from repro.net.packet import Message
from repro.sim import Simulator


def lossy_net(buffer_bytes, rto=0.1, rate=1000.0, segment_bytes=100,
              window=4, hosts=("a", "b", "c")):
    sim = Simulator(seed=1)
    net = StarNetwork(
        sim, hosts, link=Link(rate=rate, latency=0.0),
        segment_bytes=segment_bytes, window_segments=window,
        switch_buffer_bytes=buffer_bytes, rto=rto,
    )
    return sim, net


def test_no_drops_with_infinite_buffer():
    sim, net = lossy_net(buffer_bytes=None)
    net.transport("b").listen(6000, lambda m: None)
    net.transport("a").send_message(Message(flow=FlowKey("a", 1, "b", 6000), size=2000))
    sim.run()
    assert net.switch.total_drops == 0
    assert net.transport("a").segments_lost == 0


def _two_into_one(buffer_bytes, rto):
    """Two senders converge on b's egress port: sum of input rates (2x)
    exceeds the port rate (1x), so a shallow buffer must overflow."""
    sim, net = lossy_net(buffer_bytes=buffer_bytes, rto=rto)
    got = []
    net.transport("b").listen(6000, got.append)
    net.transport("a").send_message(Message(flow=FlowKey("a", 1, "b", 6000), size=2000))
    net.transport("c").send_message(Message(flow=FlowKey("c", 2, "b", 6000), size=2000))
    return sim, net, got


def test_overflow_drops_and_counts():
    sim, net, got = _two_into_one(buffer_bytes=200, rto=0.05)
    sim.run()
    assert net.switch.total_drops > 0
    lost = net.transport("a").segments_lost + net.transport("c").segments_lost
    assert lost == net.switch.total_drops


def test_message_still_fully_delivered_despite_drops():
    """Conservation under loss: RTO retransmission completes the message."""
    sim, net, got = _two_into_one(buffer_bytes=200, rto=0.05)
    sim.run()
    assert sorted(m.size for m in got) == [2000, 2000]
    assert net.nic("b").bytes_rx == 4000
    retx = (net.transport("a").segments_retransmitted
            + net.transport("c").segments_retransmitted)
    assert retx >= 1


def test_losses_never_beat_the_ideal_schedule():
    """With drops, completion is never earlier than lossless serialization
    (4000 B through a 1000 B/s port = 4 s), and everything is delivered.
    (RTO stalls can overlap useful serialization, so end time is not
    monotone in RTO — only the lower bound is a sound invariant.)"""
    for rto in (0.05, 0.5):
        sim, net, got = _two_into_one(buffer_bytes=200, rto=rto)
        sim.run()
        lost = net.transport("a").segments_lost + net.transport("c").segments_lost
        assert lost > 0
        assert net.nic("b").bytes_rx == 4000
        assert sim.now >= 4.0 - 1e-9


def test_aimd_window_halves_on_loss():
    from repro.net.transport import _SendState

    s = _SendState(window=8)
    s.on_loss()
    assert s.window == 4.0
    s.on_loss()
    s.on_loss()
    s.on_loss()
    assert s.window == 1.0  # floor at 1
    s.on_loss()
    assert s.window == 1.0


def test_aimd_additive_increase_caps_at_base():
    from repro.net.transport import _SendState

    s = _SendState(window=4)
    s.on_loss()  # 2.0
    for _ in range(100):
        s.on_progress()
    assert s.window == 4.0


def test_slow_start_exits_into_congestion_avoidance():
    """Below ssthresh growth is +1/segment; after a loss resets ssthresh,
    growth switches to +1/window (congestion avoidance)."""
    from repro.net.transport import _SendState

    s = _SendState(window=8, slow_start=True)
    assert s.window == 1.0 and s.ssthresh == 8.0
    s.on_progress()
    assert s.window == 2.0  # exponential phase: +1 per served segment
    s.on_progress()
    assert s.window == 3.0
    s.on_loss()
    assert s.window == 1.5 and s.ssthresh == 1.5  # MD + slow-start exit
    s.on_progress()
    assert s.window == pytest.approx(1.5 + 1.0 / 1.5)  # now additive


def test_on_loss_tracks_ssthresh():
    from repro.net.transport import _SendState

    s = _SendState(window=8)
    assert s.ssthresh == 0.0  # no slow start: already past threshold
    s.on_loss()
    assert s.window == 4.0 and s.ssthresh == 4.0
    s.on_loss()
    assert s.window == 2.0 and s.ssthresh == 2.0


def test_local_drop_releases_window_slot():
    """An egress (netem/AQM) drop must free its window slot; otherwise the
    flow wedges once ``window`` drops are in flight.  Full delivery of a
    many-segment message through a very lossy egress proves the release."""
    from repro.net.qdisc.netem import NetemQdisc

    sim, net = lossy_net(buffer_bytes=None, rto=0.05)
    nic = net.nic("a")
    nic.loss_tolerant = True
    nic.set_qdisc(NetemQdisc(loss=0.4, seed=3))
    got = []
    net.transport("b").listen(6000, got.append)
    net.transport("a").send_message(
        Message(flow=FlowKey("a", 1, "b", 6000), size=2000)
    )
    sim.run()
    assert [m.size for m in got] == [2000]
    tp = net.transport("a")
    assert tp.segments_lost > 0          # the netem loss actually bit
    assert tp.segments_retransmitted >= tp.segments_lost
    assert tp.active_flows == 0          # every window slot was released


def test_egress_drop_raises_without_loss_tolerance():
    """Default NICs still fail loudly on enqueue drops (config bugs must
    not silently become packet loss)."""
    from repro.errors import NetworkError
    from repro.net.qdisc.netem import NetemQdisc

    sim, net = lossy_net(buffer_bytes=None)
    net.nic("a").set_qdisc(NetemQdisc(loss=0.999, seed=1))
    net.transport("b").listen(6000, lambda m: None)
    with pytest.raises(NetworkError):
        net.transport("a").send_message(
            Message(flow=FlowKey("a", 1, "b", 6000), size=2000)
        )
        sim.run()


def test_incast_many_senders_converge():
    """A 4-into-1 incast with a shallow buffer still delivers everything."""
    hosts = ("sink", "s1", "s2", "s3", "s4")
    sim, net = lossy_net(buffer_bytes=300, rto=0.05, hosts=hosts)
    got = []
    net.transport("sink").listen(6000, lambda m: got.append(m.size))
    for i, h in enumerate(hosts[1:]):
        net.transport(h).send_message(
            Message(flow=FlowKey(h, 100 + i, "sink", 6000), size=1500)
        )
    sim.run()
    assert sorted(got) == [1500] * 4
    assert net.switch.total_drops > 0  # the incast actually overflowed


def test_retransmission_after_flow_state_cleanup():
    """A drop whose flow has drained at the sender resurrects the flow."""
    sim, net = lossy_net(buffer_bytes=100, rto=0.5)
    got = []
    net.transport("b").listen(6000, got.append)
    # window 4 >= message segments: sender drains before the drop's RTO
    net.transport("a").send_message(Message(flow=FlowKey("a", 1, "b", 6000), size=300))
    sim.run()
    assert len(got) == 1
    assert got[0].size == 300


def test_port_drop_counter_per_port():
    sim, net, got = _two_into_one(buffer_bytes=200, rto=0.05)
    sim.run()
    assert net.switch.port("b").drops > 0
    assert net.switch.port("a").drops == 0
    assert net.switch.port("c").drops == 0


from hypothesis import given, settings, strategies as st


@settings(max_examples=15, deadline=None)
@given(
    buffer_bytes=st.sampled_from([150, 250, 400, 1000]),
    sizes=st.lists(st.integers(min_value=50, max_value=3000),
                   min_size=2, max_size=6),
    rto=st.sampled_from([0.02, 0.1]),
)
def test_property_conservation_under_arbitrary_loss(buffer_bytes, sizes, rto):
    """No matter how shallow the buffers, every message is delivered in
    full exactly once (the RTO path never loses or duplicates bytes)."""
    sim = Simulator(seed=1)
    hosts = ["sink"] + [f"s{i}" for i in range(len(sizes))]
    net = StarNetwork(
        sim, hosts, link=Link(rate=1000.0, latency=0.0),
        segment_bytes=100, window_segments=4,
        switch_buffer_bytes=buffer_bytes, rto=rto,
    )
    got = []
    net.transport("sink").listen(6000, lambda m: got.append(m.size))
    for i, (h, size) in enumerate(zip(hosts[1:], sizes)):
        net.transport(h).send_message(
            Message(flow=FlowKey(h, 100 + i, "sink", 6000), size=size)
        )
    sim.run(max_steps=2_000_000)
    assert sorted(got) == sorted(sizes)
    assert net.nic("sink").bytes_rx == sum(sizes)
