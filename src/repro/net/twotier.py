"""Two-tier (leaf-spine) topology.

The paper's testbed is a single switch; production clusters are multi-tier
with an oversubscribed core.  This extension asks whether end-host
scheduling still suffices when *cross-rack* bandwidth, not the host NIC,
can be the bottleneck (ablation A14).

Model: ``n_leaves`` leaf switches, hosts distributed round-robin; one
spine.  Host links run at the host rate; each leaf's uplink to the spine
runs at ``host_rate * hosts_per_leaf / oversubscription`` in each
direction.  Forwarding is the obvious two-tier route: host -> leaf ->
(same-leaf ? host : spine -> leaf -> host), every hop an output-queued
FIFO port (finite buffers supported, like the single switch).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import NetworkError
from repro.net.link import Link
from repro.net.nic import NIC
from repro.net.packet import Segment
from repro.net.switch import OutputPort, VirtualOutputPort
from repro.net.topology import DeliveryTap, _chain_deliver
from repro.net.transport import (
    DEFAULT_SEGMENT_BYTES,
    DEFAULT_WINDOW_SEGMENTS,
    Transport,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class LeafSwitch:
    """A leaf: one port per local host, plus an uplink to the spine."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        host_link: Link,
        uplink: Link,
        buffer_bytes: Optional[float],
        on_drop: Optional[Callable[[Segment], None]],
        fast_path: bool = False,
    ) -> None:
        self.sim = sim
        self.name = name
        self.host_link = host_link
        self.uplink_link = uplink
        self.buffer_bytes = buffer_bytes
        self.on_drop = on_drop
        #: flow-granularity *final-hop* ports (see TwoTierNetwork docs)
        self.fast_path = fast_path
        self._host_ports: Dict[str, OutputPort] = {}
        self.uplink: Optional[OutputPort] = None  # wired by the topology
        self.local_hosts: set[str] = set()

    def attach_host(self, host_id: str, deliver: Callable[[Segment], None]) -> None:
        port_cls = VirtualOutputPort if self.fast_path else OutputPort
        self._host_ports[host_id] = port_cls(
            self.sim, host_id, self.host_link, deliver,
            buffer_bytes=self.buffer_bytes, on_drop=self.on_drop,
        )
        self.local_hosts.add(host_id)

    def ingress(self, seg: Segment) -> None:
        """From a local host or from the spine."""
        dst = seg.flow.dst_host
        if dst in self.local_hosts:
            self._host_ports[dst].enqueue(seg)
        else:
            if self.uplink is None:
                raise NetworkError(f"{self.name}: no uplink for {dst!r}")
            self.uplink.enqueue(seg)

    @property
    def drops(self) -> int:
        ports = list(self._host_ports.values())
        if self.uplink is not None:
            ports.append(self.uplink)
        return sum(p.drops for p in ports)


class SpineSwitch:
    """The spine: one downlink port per leaf."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._downlinks: Dict[str, OutputPort] = {}  # leaf name -> port
        self._leaf_of_host: Dict[str, str] = {}

    def attach_leaf(
        self,
        leaf_name: str,
        link: Link,
        deliver: Callable[[Segment], None],
        hosts: List[str],
        buffer_bytes: Optional[float],
        on_drop: Optional[Callable[[Segment], None]],
    ) -> None:
        self._downlinks[leaf_name] = OutputPort(
            self.sim, leaf_name, link, deliver,
            buffer_bytes=buffer_bytes, on_drop=on_drop,
        )
        for h in hosts:
            self._leaf_of_host[h] = leaf_name

    def ingress(self, seg: Segment) -> None:
        leaf = self._leaf_of_host.get(seg.flow.dst_host)
        if leaf is None:
            raise NetworkError(f"spine: unknown host {seg.flow.dst_host!r}")
        self._downlinks[leaf].enqueue(seg)


class TwoTierNetwork:
    """Hosts x (NIC + Transport) over a leaf-spine fabric."""

    def __init__(
        self,
        sim: "Simulator",
        host_ids: List[str],
        n_leaves: int = 3,
        link: Optional[Link] = None,
        oversubscription: float = 1.0,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        window_segments: int = DEFAULT_WINDOW_SEGMENTS,
        window_jitter: float = 0.0,
        buffer_bytes: Optional[float] = None,
        rto: float = 0.2,
        fast_path: bool = False,
    ) -> None:
        """``fast_path`` runs the *final-hop* (leaf host) ports at flow
        granularity (:class:`~repro.net.switch.VirtualOutputPort`):
        admission happens inside the segment's real arrival event (the
        zero-lookahead ``enqueue`` path), so it is exact regardless of
        how many hops and latencies the segment crossed, and the
        serialization + delivery events of the last hop are elided.
        Middle hops (leaf uplinks, spine downlinks) stay at packet
        granularity: their deliveries feed the *next* port's admission
        order, which a lazily-settling port cannot guarantee.  Like all
        observation-level switches, this must never change results."""
        if n_leaves < 1:
            raise NetworkError("need >= 1 leaf")
        if len(host_ids) < n_leaves:
            raise NetworkError("fewer hosts than leaves")
        if oversubscription < 1.0:
            raise NetworkError("oversubscription must be >= 1")
        self.sim = sim
        self.link = link if link is not None else Link(rate=1.25e9)
        self.fast_path = fast_path
        self.nics: Dict[str, NIC] = {}
        self.transports: Dict[str, Transport] = {}
        self._delivery_taps: List[DeliveryTap] = []
        self.leaves: List[LeafSwitch] = []
        self.spine = SpineSwitch(sim)
        self.leaf_of_host: Dict[str, str] = {}

        groups: List[List[str]] = [[] for _ in range(n_leaves)]
        for i, hid in enumerate(host_ids):
            groups[i % n_leaves].append(hid)

        def drop_to_sender(seg: Segment) -> None:
            self.transports[seg.flow.src_host].on_segment_lost(seg)

        for li, hosts in enumerate(groups):
            uplink_rate = self.link.rate * len(hosts) / oversubscription
            leaf = LeafSwitch(
                sim, f"leaf{li}", self.link,
                Link(rate=uplink_rate, latency=self.link.latency),
                buffer_bytes, drop_to_sender,
                fast_path=fast_path,
            )
            self.leaves.append(leaf)
            for hid in hosts:
                if hid in self.nics:
                    raise NetworkError(f"duplicate host id {hid!r}")
                nic = NIC(sim, hid, rate=self.link.rate)
                nic.attach_link(leaf.ingress, self.link.latency)
                leaf.attach_host(hid, nic.receive)
                if fast_path:
                    port = leaf._host_ports[hid]
                    nic._rx_settle = port.settle
                    port._rx_nic = nic
                self.nics[hid] = nic
                self.transports[hid] = Transport(
                    sim, nic, segment_bytes=segment_bytes,
                    window_segments=window_segments,
                    window_jitter=window_jitter, rto=rto,
                )
                self.leaf_of_host[hid] = leaf.name
            # leaf -> spine uplink; spine -> leaf downlink
            leaf.uplink = OutputPort(
                sim, f"{leaf.name}->spine", leaf.uplink_link,
                self.spine.ingress, buffer_bytes=buffer_bytes,
                on_drop=drop_to_sender,
            )
            self.spine.attach_leaf(
                leaf.name, leaf.uplink_link, leaf.ingress, hosts,
                buffer_bytes, drop_to_sender,
            )

    def add_delivery_tap(self, tap: DeliveryTap) -> None:
        """Call ``tap(msg)`` for every message any transport delivers
        (same contract as :meth:`StarNetwork.add_delivery_tap`)."""
        self._delivery_taps.append(tap)
        for transport in self.transports.values():
            _chain_deliver(transport, tap)

    def nic(self, host_id: str) -> NIC:
        try:
            return self.nics[host_id]
        except KeyError:
            raise NetworkError(f"unknown host {host_id!r}") from None

    def transport(self, host_id: str) -> Transport:
        try:
            return self.transports[host_id]
        except KeyError:
            raise NetworkError(f"unknown host {host_id!r}") from None

    def same_leaf(self, a: str, b: str) -> bool:
        return self.leaf_of_host[a] == self.leaf_of_host[b]

    @property
    def host_ids(self) -> List[str]:
        return list(self.nics)

    def iter_ports(self):
        """Every fabric egress port across both tiers (invariant checks)."""
        for leaf in self.leaves:
            yield from leaf._host_ports.values()
            if leaf.uplink is not None:
                yield leaf.uplink
        yield from self.spine._downlinks.values()
