"""Unit tests for the tc facade and tc-command shell."""

import pytest

from repro.errors import TcError
from repro.net.nic import NIC
from repro.net.qdisc import HTBQdisc, PFifo
from repro.sim import Simulator
from repro.tensorlights.tc import BAND_CLASSID_BASE, Tc, TcShell
from repro.units import gbps

from tests.net.helpers import seg


def make_nic(sim=None):
    sim = sim or Simulator()
    nic = NIC(sim, "h00", rate=gbps(10))
    nic.attach_link(lambda s: None, latency=0.0)
    return nic


def test_install_builds_htb_with_bands():
    nic = make_nic()
    tc = Tc(nic)
    tc.install_tensorlights_htb(6)
    assert tc.installed
    assert tc.n_bands == 6
    assert isinstance(nic.qdisc, HTBQdisc)
    # root + 6 leaves
    assert len(nic.qdisc.classes) == 7


def test_install_invalid_bands():
    tc = Tc(make_nic())
    with pytest.raises(TcError):
        tc.install_tensorlights_htb(0)


def test_port_band_mapping_routes_traffic():
    nic = make_nic()
    tc = Tc(nic)
    tc.install_tensorlights_htb(3)
    tc.set_port_band(5000, 0)
    tc.set_port_band(5001, 2)
    assert tc.band_of_port(5000) == 0
    assert tc.band_of_port(5001) == 2
    assert tc.port_bands == {5000: 0, 5001: 2}
    q: HTBQdisc = nic.qdisc
    q.enqueue(seg(100, sport=5000), 0.0)
    q.enqueue(seg(100, sport=5001), 0.0)
    assert q.class_backlog(BAND_CLASSID_BASE + 0) == 1
    assert q.class_backlog(BAND_CLASSID_BASE + 2) == 1


def test_unmatched_port_goes_to_last_band():
    nic = make_nic()
    tc = Tc(nic)
    tc.install_tensorlights_htb(3)
    q: HTBQdisc = nic.qdisc
    q.enqueue(seg(100, sport=9999), 0.0)
    assert q.class_backlog(BAND_CLASSID_BASE + 2) == 1


def test_set_port_band_remaps():
    tc = Tc(make_nic())
    tc.install_tensorlights_htb(3)
    tc.set_port_band(5000, 0)
    tc.set_port_band(5000, 1)
    assert tc.band_of_port(5000) == 1


def test_set_port_band_range_checked():
    tc = Tc(make_nic())
    tc.install_tensorlights_htb(3)
    with pytest.raises(TcError):
        tc.set_port_band(5000, 3)


def test_operations_require_installed_qdisc():
    tc = Tc(make_nic())
    with pytest.raises(TcError):
        tc.set_port_band(5000, 0)
    with pytest.raises(TcError):
        tc.del_port(5000)
    with pytest.raises(TcError):
        tc.change_band_prio(0, 1)


def test_del_port():
    tc = Tc(make_nic())
    tc.install_tensorlights_htb(3)
    tc.set_port_band(5000, 0)
    tc.del_port(5000)
    assert tc.band_of_port(5000) is None


def test_remove_reverts_to_fifo():
    nic = make_nic()
    tc = Tc(nic)
    tc.install_tensorlights_htb(3)
    tc.remove()
    assert not tc.installed
    assert isinstance(nic.qdisc, PFifo)


def test_change_band_prio():
    nic = make_nic()
    tc = Tc(nic)
    tc.install_tensorlights_htb(2)
    tc.change_band_prio(0, 7)
    assert nic.qdisc.classes[BAND_CLASSID_BASE].prio == 7
    with pytest.raises(TcError):
        tc.change_band_prio(5, 0)


def test_render_commands_shape():
    tc = Tc(make_nic())
    tc.install_tensorlights_htb(2)
    tc.set_port_band(5000, 0)
    cmds = tc.render_commands()
    assert cmds[0].startswith("tc qdisc replace dev h00 root handle 1: htb")
    assert any("classid 1:10 htb" in c and "prio 0" in c for c in cmds)
    assert any("sport 5000" in c and "flowid 1:10" in c for c in cmds)


def test_render_commands_uninstalled():
    tc = Tc(make_nic())
    assert tc.render_commands() == ["tc qdisc del dev h00 root"]


# ---------------------------------------------------------------- TcShell


def shell():
    sim = Simulator()
    nic = make_nic(sim)
    return TcShell({"h00": nic}), nic


def test_shell_full_flow():
    sh, nic = shell()
    sh.run("tc qdisc replace dev h00 root handle 1: htb bands 3")
    sh.run("tc filter add dev h00 sport 5000 band 0")
    sh.run("tc class change dev h00 band 0 prio 2")
    assert isinstance(nic.qdisc, HTBQdisc)
    assert sh.tc_for("h00").band_of_port(5000) == 0
    sh.run("tc filter del dev h00 sport 5000")
    assert sh.tc_for("h00").band_of_port(5000) is None
    sh.run("tc qdisc del dev h00 root")
    assert isinstance(nic.qdisc, PFifo)


def test_shell_tc_prefix_optional():
    sh, nic = shell()
    sh.run("qdisc replace dev h00 root htb bands 2")
    assert isinstance(nic.qdisc, HTBQdisc)


def test_shell_errors():
    sh, _ = shell()
    with pytest.raises(TcError, match="unknown device"):
        sh.run("tc qdisc replace dev h99 root htb bands 2")
    with pytest.raises(TcError, match="empty"):
        sh.run("tc")
    with pytest.raises(TcError, match="dev"):
        sh.run("tc qdisc replace root htb")
    with pytest.raises(TcError, match="unsupported"):
        sh.run("tc qdisc show dev h00")
    with pytest.raises(TcError, match="htb"):
        sh.run("tc qdisc replace dev h00 root sfq")


def test_kv_parser_first_value_wins():
    from repro.tensorlights.tc import TcShell

    kv = TcShell._kv(["filter", "add", "dev", "h00", "sport", "5000",
                      "band", "0", "dev", "ignored"])
    assert kv["dev"] == "h00"  # setdefault: first occurrence wins
    assert kv["sport"] == "5000"


def test_install_replaces_existing_htb():
    nic = make_nic()
    tc = Tc(nic)
    tc.install_tensorlights_htb(3)
    tc.set_port_band(5000, 0)
    tc.install_tensorlights_htb(6)  # reinstall with more bands
    assert tc.n_bands == 6
    assert tc.band_of_port(5000) is None  # filters reset
