"""Distributed DL job specification."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dl.model_zoo import ModelSpec
from repro.errors import WorkloadError


@dataclass(frozen=True)
class JobSpec:
    """One training job, paper §III style.

    Attributes:
        job_id: unique name (``"job00"``).
        model: what is being trained.
        n_workers: remote workers (paper default: 20).
        local_batch_size: samples per worker per local step (paper: 4).
        target_global_steps: total local steps across all workers at which
            the job stops (paper: 30 000).
        sync: synchronous training (barrier per iteration) or asynchronous.
        arrival_time: simulated launch time (jobs staggered by 0.1 s in
            the paper).
        compute_jitter_sigma: lognormal sigma on per-step compute time —
            small, to model real-machine variability.
        n_ps: number of parameter servers the model is sharded across
            (paper §III: "a more general case where one DL job has
            multiple PSes").
        compression_ratio: fraction of update bytes actually transmitted
            (1.0 = uncompressed; 0.25 = 4x compression a la QSGD/TernGrad,
            the paper's related work §VI).  Applied to both model and
            gradient updates; compression compute cost is not modeled.
        architecture: communication architecture — ``"ps"`` (parameter
            server, the paper's workload) or ``"allreduce"`` (chunked ring
            all-reduce, see :mod:`repro.collectives`).  In all-reduce mode
            ``n_workers`` counts ring members (there is no separate PS
            task) and ``n_ps`` must stay 1.
    """

    job_id: str
    model: ModelSpec
    n_workers: int = 20
    local_batch_size: int = 4
    target_global_steps: int = 30_000
    sync: bool = True
    arrival_time: float = 0.0
    compute_jitter_sigma: float = 0.03
    n_ps: int = 1
    compression_ratio: float = 1.0
    architecture: str = "ps"

    def __post_init__(self) -> None:
        if self.architecture not in ("ps", "allreduce"):
            raise WorkloadError(
                f"{self.job_id}: architecture must be 'ps' or 'allreduce', "
                f"got {self.architecture!r}"
            )
        if self.architecture == "allreduce":
            if self.n_workers < 2:
                raise WorkloadError(
                    f"{self.job_id}: a ring needs >= 2 members, got "
                    f"{self.n_workers}"
                )
            if self.n_ps != 1:
                raise WorkloadError(
                    f"{self.job_id}: all-reduce jobs have no PS shards "
                    f"(n_ps must stay 1, got {self.n_ps})"
                )
            if not self.sync:
                raise WorkloadError(
                    f"{self.job_id}: ring all-reduce is a synchronous "
                    "collective (sync must stay True)"
                )
        if self.n_workers < 1:
            raise WorkloadError(f"{self.job_id}: n_workers must be >= 1")
        if self.local_batch_size < 1:
            raise WorkloadError(f"{self.job_id}: local_batch_size must be >= 1")
        if self.target_global_steps < self.n_workers:
            raise WorkloadError(
                f"{self.job_id}: target_global_steps ({self.target_global_steps}) "
                f"< n_workers ({self.n_workers}) — not even one iteration"
            )
        if self.arrival_time < 0:
            raise WorkloadError(f"{self.job_id}: negative arrival_time")
        if self.compute_jitter_sigma < 0:
            raise WorkloadError(f"{self.job_id}: negative jitter sigma")
        if self.n_ps < 1:
            raise WorkloadError(f"{self.job_id}: n_ps must be >= 1")
        if not 0.0 < self.compression_ratio <= 1.0:
            raise WorkloadError(
                f"{self.job_id}: compression_ratio must be in (0, 1], "
                f"got {self.compression_ratio}"
            )

    @property
    def n_iterations(self) -> int:
        """Synchronous iterations to reach the target global step.

        The global step advances by ``n_workers`` per synchronous
        iteration (paper §II, "Local vs. global steps").
        """
        return math.ceil(self.target_global_steps / self.n_workers)

    @property
    def local_steps_per_worker(self) -> int:
        """Per-worker local steps (== iterations when synchronous)."""
        return self.n_iterations

    @property
    def compute_demand_per_step(self) -> float:
        """Core-seconds per local step on a worker."""
        return self.local_batch_size * self.model.per_sample_compute

    @property
    def update_bytes(self) -> int:
        return self.model.update_bytes

    @property
    def shard_bytes(self) -> int:
        """Wire bytes of one model/gradient shard after compression
        (whole model when n_ps == 1 and compression_ratio == 1)."""
        return max(
            1, math.ceil(self.model.update_bytes * self.compression_ratio / self.n_ps)
        )

    @property
    def ps_update_compute_per_shard(self) -> float:
        """Core-seconds for one PS to fold one worker's gradient shard."""
        return self.model.ps_update_compute / self.n_ps

    @property
    def ring_chunk_bytes(self) -> int:
        """Wire bytes of one ring all-reduce chunk.

        Chunked ring all-reduce splits the update into ``n_workers``
        (= ring size) chunks; each of the 2·(N−1) steps moves one chunk
        to the ring successor, so per iteration every member link carries
        ``2·(N−1)/N · update_bytes`` — less than the PS architecture's
        per-worker-link volume, but on *every* host.
        """
        return max(
            1,
            math.ceil(
                self.model.update_bytes * self.compression_ratio / self.n_workers
            ),
        )
