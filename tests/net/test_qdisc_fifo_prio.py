"""Unit tests for PFifo, PrioQdisc and filters."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import QdiscError
from repro.net.qdisc import PFifo, PortFilter, PrioQdisc

from tests.net.helpers import seg


# ---------------------------------------------------------------- PFifo


def test_pfifo_fifo_order():
    q = PFifo()
    a, b, c = seg(10), seg(20), seg(30)
    for s in (a, b, c):
        assert q.enqueue(s, 0.0)
    assert q.dequeue(0.0) is a
    assert q.dequeue(0.0) is b
    assert q.dequeue(0.0) is c
    assert q.dequeue(0.0) is None


def test_pfifo_backlog_accounting():
    q = PFifo()
    q.enqueue(seg(10), 0.0)
    q.enqueue(seg(20), 0.0)
    assert len(q) == 2
    assert q.backlog_bytes == 30
    q.dequeue(0.0)
    assert len(q) == 1
    assert q.backlog_bytes == 20


def test_pfifo_limit_drops():
    q = PFifo(limit=2)
    assert q.enqueue(seg(), 0.0)
    assert q.enqueue(seg(), 0.0)
    assert not q.enqueue(seg(), 0.0)
    assert q.drops == 1
    assert len(q) == 2


def test_pfifo_invalid_limit():
    with pytest.raises(QdiscError):
        PFifo(limit=0)


def test_pfifo_work_conserving_contract():
    q = PFifo()
    assert q.next_ready_time(5.0) is None
    q.enqueue(seg(), 5.0)
    assert q.next_ready_time(5.0) == 5.0


@given(st.lists(st.integers(min_value=1, max_value=10_000), max_size=60))
def test_property_pfifo_preserves_order_and_bytes(sizes):
    q = PFifo()
    segments = [seg(s) for s in sizes]
    for s in segments:
        q.enqueue(s, 0.0)
    assert q.backlog_bytes == sum(sizes)
    out = []
    while True:
        s = q.dequeue(0.0)
        if s is None:
            break
        out.append(s)
    assert out == segments
    assert q.backlog_bytes == 0


# ---------------------------------------------------------------- PortFilter


def test_port_filter_src_match():
    f = PortFilter(default_class=9)
    f.add_match(5000, 1)
    assert f.classify(seg(sport=5000)) == 1
    assert f.classify(seg(sport=5001)) == 9


def test_port_filter_dst_match():
    f = PortFilter()
    f.add_match(6000, 2, direction="dst")
    assert f.classify(seg(dport=6000)) == 2
    assert f.classify(seg(dport=6001)) is None


def test_port_filter_src_wins_over_dst():
    f = PortFilter()
    f.add_match(5000, 1, direction="src")
    f.add_match(6000, 2, direction="dst")
    assert f.classify(seg(sport=5000, dport=6000)) == 1


def test_port_filter_remove_match():
    f = PortFilter(default_class=0)
    f.add_match(5000, 1)
    assert f.n_matches == 1
    f.remove_match(5000)
    assert f.classify(seg(sport=5000)) == 0
    assert f.n_matches == 0
    f.remove_match(5000)  # idempotent


# ---------------------------------------------------------------- PrioQdisc


def _prio_with_ports(bands=3):
    f = PortFilter()
    for band in range(bands):
        f.add_match(5000 + band, band)
    return PrioQdisc(bands=bands, filter=f)


def test_prio_strict_priority_order():
    q = _prio_with_ports()
    low = seg(sport=5002)
    mid = seg(sport=5001)
    high = seg(sport=5000)
    for s in (low, mid, high):
        q.enqueue(s, 0.0)
    assert q.dequeue(0.0) is high
    assert q.dequeue(0.0) is mid
    assert q.dequeue(0.0) is low


def test_prio_fifo_within_band():
    q = _prio_with_ports()
    a = seg(sport=5000)
    b = seg(sport=5000)
    q.enqueue(a, 0.0)
    q.enqueue(b, 0.0)
    assert q.dequeue(0.0) is a
    assert q.dequeue(0.0) is b


def test_prio_unclassified_goes_to_last_band():
    q = _prio_with_ports()
    unknown = seg(sport=9999)
    high = seg(sport=5000)
    q.enqueue(unknown, 0.0)
    q.enqueue(high, 0.0)
    assert q.dequeue(0.0) is high
    assert q.dequeue(0.0) is unknown
    assert q.band_backlog(2) == 0


def test_prio_no_filter_uses_last_band():
    q = PrioQdisc(bands=2)
    s = seg()
    q.enqueue(s, 0.0)
    assert q.band_backlog(1) == 1
    assert q.dequeue(0.0) is s


def test_prio_filter_out_of_range_band_raises():
    f = PortFilter()
    f.add_match(5000, 7)
    q = PrioQdisc(bands=3, filter=f)
    with pytest.raises(QdiscError):
        q.enqueue(seg(sport=5000), 0.0)


def test_prio_len_and_bytes():
    q = _prio_with_ports()
    q.enqueue(seg(10, sport=5000), 0.0)
    q.enqueue(seg(20, sport=5002), 0.0)
    assert len(q) == 2
    assert q.backlog_bytes == 30


def test_prio_invalid_bands():
    with pytest.raises(QdiscError):
        PrioQdisc(bands=0)


def test_prio_drop_counted():
    q = PrioQdisc(bands=1, limit_per_band=1)
    q.enqueue(seg(), 0.0)
    assert not q.enqueue(seg(), 0.0)
    assert q.drops == 1


def test_prio_high_band_never_starved_by_lower_enqueues():
    """Band 0 traffic added later still preempts queued band-1 traffic."""
    q = _prio_with_ports()
    q.enqueue(seg(sport=5001), 0.0)
    first = q.dequeue(0.0)
    assert first.flow.src_port == 5001
    q.enqueue(seg(sport=5001), 0.0)
    q.enqueue(seg(sport=5000), 0.0)
    assert q.dequeue(0.0).flow.src_port == 5000
