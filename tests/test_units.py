"""Unit tests for the units helpers."""

import pytest

from repro import units
from repro.errors import ConfigError


def test_byte_constants():
    assert units.KB == 1024
    assert units.MB == 1024 ** 2
    assert units.GB == 1024 ** 3


def test_rate_conversions():
    assert units.gbps(10) == pytest.approx(10e9 / 8)
    assert units.mbps(1) == pytest.approx(1e6 / 8)


def test_byte_helpers():
    assert units.kib(1) == 1024
    assert units.mib(1.5) == int(1.5 * 1024 ** 2)


def test_fmt_bytes():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(1024) == "1.00 KiB"
    assert units.fmt_bytes(1.86 * 1024 ** 2) == "1.86 MiB"


def test_fmt_rate():
    assert units.fmt_rate(units.gbps(10)) == "10.00 Gbps"
    assert units.fmt_rate(units.mbps(5)) == "5.00 Mbps"
    assert units.fmt_rate(10) == "80 bps"


def test_parse_rate():
    assert units.parse_rate("10Gbit") == units.gbps(10)
    assert units.parse_rate("100 mbit") == units.mbps(100)
    assert units.parse_rate("2.5 Gbit/s") == units.gbps(2.5)
    assert units.parse_rate("10.00 Gbps") == units.gbps(10)
    assert units.parse_rate("8") == 1.0  # bare numbers are bits/second


def test_parse_rate_round_trips_fmt_rate():
    for rate in (units.gbps(10), units.mbps(5), units.gbps(1.25)):
        assert units.parse_rate(units.fmt_rate(rate)) == pytest.approx(
            rate, rel=0.005
        )


def test_parse_rate_rejects_junk():
    with pytest.raises(ConfigError):
        units.parse_rate("fast")
    with pytest.raises(ConfigError):
        units.parse_rate("10 parsecs")


def test_parse_size():
    assert units.parse_size("128KiB") == 128 * 1024
    assert units.parse_size("4MB") == 4 * units.MB  # binary convention
    assert units.parse_size("1.86 MiB") == int(round(1.86 * units.MB))
    assert units.parse_size("512") == 512


def test_parse_size_round_trips_fmt_bytes():
    for n in (512, 1024, 1_856_616, 4 * units.MB):
        assert units.parse_size(units.fmt_bytes(n)) == pytest.approx(
            n, rel=0.005
        )


def test_parse_size_rejects_junk():
    with pytest.raises(ConfigError):
        units.parse_size("big")
    with pytest.raises(ConfigError):
        units.parse_size("4 floppies")


def test_fmt_time():
    assert units.fmt_time(1.5) == "1.50 s"
    assert units.fmt_time(0.0015) == "1.50 ms"
    assert units.fmt_time(2e-6) == "2.0 us"
