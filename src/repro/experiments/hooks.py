"""Registered build hooks: picklable mid-build Scenario extensions.

Historically, studies needing mid-build access (A6's rate-limiting
qdiscs, A10's adaptive controller) passed live callables to
:func:`~repro.experiments.runtime.materialize` — which meant they could
not cross process boundaries and were invisible to the result cache, so
those ablations bypassed the Campaign layer entirely.

A :class:`BuildHook` fixes that by *naming* the extension: a
:class:`~repro.experiments.scenario.Scenario` carries only the hook's
registered name plus JSON-scalar parameters (part of its content key),
and ``materialize`` resolves the name through this registry inside
whatever process runs the scenario.  Hooked scenarios therefore run
through parallel executors and the on-disk cache like any other.

Three hooks ship built in:

* ``tl_controller`` — construct the TensorLights controller explicitly
  (static or adaptive variant, optional non-work-conserving HTB), the
  declarative form of A10 and the ``htb_borrowing``/``adaptive``
  component knockouts.
* ``rate_control`` — A6's centralized sender rate allocation: static
  non-work-conserving HTB shares at each contended PS host.
* ``slow_start`` — toggle the transport's slow-start ramp on every host.

Custom hooks register via :func:`register_build_hook` at import time of
the module that defines them (the registry is process-local, so define
hooks in importable modules, not notebooks, when using the parallel
executor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runtime import Runtime
    from repro.tensorlights import TensorLights

#: The signature ``materialize``'s ``controller_factory`` expects.
ControllerFactory = Callable[
    ["Cluster", "ExperimentConfig"], Optional["TensorLights"]
]


@dataclass(frozen=True)
class BuildHook:
    """One named mid-build extension point.

    Attributes:
        name: the registry key scenarios refer to.
        description: one line for docs and error messages.
        controller: optional; given the hook's parameter dict, returns a
            ``controller_factory`` for ``materialize``.  At most one hook
            on a scenario may provide a controller.
        post_build: optional; called with the materialized
            :class:`~repro.experiments.runtime.Runtime` and the parameter
            dict after the cluster and apps are wired, before the run
            (install qdiscs, flip transport flags, attach collectors).
    """

    name: str
    description: str
    controller: Optional[
        Callable[[Dict[str, Any]], ControllerFactory]
    ] = None
    post_build: Optional[
        Callable[["Runtime", Dict[str, Any]], None]
    ] = None


_REGISTRY: Dict[str, BuildHook] = {}


def register_build_hook(hook: BuildHook) -> BuildHook:
    """Add a hook to the process-local registry (names are unique)."""
    if hook.name in _REGISTRY:
        raise ConfigError(f"build hook {hook.name!r} already registered")
    _REGISTRY[hook.name] = hook
    return hook


def get_build_hook(name: str) -> BuildHook:
    """Look up a registered hook by name."""
    hook = _REGISTRY.get(name)
    if hook is None:
        raise ConfigError(
            f"unknown build hook {name!r} (registered: {sorted(_REGISTRY)})"
        )
    return hook


def registered_hooks() -> Dict[str, BuildHook]:
    """A snapshot of the registry (name -> hook)."""
    return dict(_REGISTRY)


# -- builtin: tl_controller -------------------------------------------------


def _tl_controller(params: Dict[str, Any]) -> ControllerFactory:
    """Build the controller factory for the ``tl_controller`` hook."""
    variant = params.get("variant", "static")
    if variant not in ("static", "adaptive"):
        raise ConfigError(
            f"tl_controller variant must be 'static' or 'adaptive', "
            f"got {variant!r}"
        )
    mode_value = params.get("mode")
    check_interval = float(params.get("check_interval", 0.5))
    work_conserving = bool(params.get("work_conserving", True))

    def factory(
        cluster: "Cluster", config: "ExperimentConfig"
    ) -> Optional["TensorLights"]:
        from repro.experiments.config import Policy
        from repro.tensorlights import (
            AdaptiveTensorLights,
            TensorLights,
            TLMode,
        )

        if mode_value is not None:
            mode = TLMode(mode_value)
        elif config.policy == Policy.TLS_RR:
            mode = TLMode.RR
        else:
            mode = TLMode.ONE
        if variant == "adaptive":
            return AdaptiveTensorLights(
                cluster,
                mode=mode,
                interval=config.tls_interval,
                max_bands=config.max_bands,
                check_interval=check_interval,
                work_conserving=work_conserving,
            )
        return TensorLights(
            cluster,
            mode=mode,
            interval=config.tls_interval,
            max_bands=config.max_bands,
            work_conserving=work_conserving,
        )

    return factory


register_build_hook(BuildHook(
    name="tl_controller",
    description=(
        "explicit TensorLights controller: variant=static|adaptive, "
        "mode=tls-one|tls-rr, check_interval, work_conserving"
    ),
    controller=_tl_controller,
))


# -- builtin: rate_control --------------------------------------------------


def _rate_control_post_build(rt: "Runtime", params: Dict[str, Any]) -> None:
    """A6's static per-job rate shaping at each contended PS host.

    Every colocated PS gets ``(link / n_colocated) * accuracy``, enforced
    with non-work-conserving HTB classes (``ceil == rate``).  A perfect
    allocator (accuracy 1.0) serializes nothing but keeps the link busy;
    an under-estimating one leaves bandwidth idle — the paper's §VII
    argument for work-conserving priorities.
    """
    from repro.net.qdisc import HTBQdisc, PortFilter

    accuracy = float(params.get("accuracy", 1.0))
    if not 0.0 < accuracy <= 1.0:
        raise ConfigError(
            f"rate_control accuracy must be in (0, 1], got {accuracy}"
        )
    cfg = rt.scenario.config
    by_host: Dict[str, List[Any]] = {}
    for app in rt.apps:
        if getattr(app, "ps_port", None) is None:
            continue  # ring jobs have no single PS port to shape
        by_host.setdefault(app.ps_host_id, []).append(app)
    for host_id, host_apps in by_host.items():
        if len(host_apps) < 2:
            continue
        share = cfg.link_rate / len(host_apps) * accuracy
        filt = PortFilter()
        htb = HTBQdisc(filter=filt, default_classid=999)
        htb.add_class(1, rate=cfg.link_rate, ceil=cfg.link_rate)
        htb.add_class(999, rate=share, ceil=share, parent=1)  # default
        for i, app in enumerate(host_apps):
            classid = 10 + i
            htb.add_class(classid, rate=share, ceil=share, parent=1)
            filt.add_match(app.ps_port, classid)
        rt.cluster.host(host_id).nic.set_qdisc(htb)


register_build_hook(BuildHook(
    name="rate_control",
    description=(
        "static per-PS rate allocation at contended hosts (A6); "
        "accuracy scales the fair share"
    ),
    post_build=_rate_control_post_build,
))


# -- builtin: slow_start ----------------------------------------------------


def _slow_start_post_build(rt: "Runtime", params: Dict[str, Any]) -> None:
    """Toggle the transport slow-start ramp on every host's transport."""
    enabled = bool(params.get("enabled", True))
    for hid in rt.cluster.host_ids:
        rt.cluster.host(hid).transport.slow_start = enabled


register_build_hook(BuildHook(
    name="slow_start",
    description="set transport slow-start (enabled=bool) on every host",
    post_build=_slow_start_post_build,
))
