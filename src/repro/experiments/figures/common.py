"""Shared plumbing for figure generators."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.experiments.config import ExperimentConfig, Policy
from repro.experiments.runner import ExperimentResult, run_experiment


def base_config(base: Optional[ExperimentConfig], **overrides) -> ExperimentConfig:
    """The figure's starting configuration, with overrides applied."""
    cfg = base if base is not None else ExperimentConfig()
    if overrides:
        cfg = cfg.replace(**overrides)
    return cfg


def run_policies(
    cfg: ExperimentConfig, policies: Iterable[Policy]
) -> Dict[Policy, ExperimentResult]:
    """Run the same configuration under several scheduling policies."""
    return {p: run_experiment(cfg.replace(policy=p)) for p in policies}


ALL_POLICIES = (Policy.FIFO, Policy.TLS_ONE, Policy.TLS_RR)
