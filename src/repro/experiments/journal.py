"""Write-ahead campaign journal: durable, crash-consistent run state.

A :class:`CampaignJournal` is an append-only JSONL file under the cache
directory (``<cache>/journals/<run-id>.jsonl``).  The campaign writes a
record *before and after* everything observable — the scenario plan
(full ``Scenario.to_dict()``, so a resume needs no re-specified grid),
each submission, each settled outcome with its attempt count and content
hash — and every append is flushed and ``fsync``'d before the campaign
proceeds, so a SIGKILL at any instant loses at most the record being
written, never corrupts one already on disk.

:meth:`CampaignJournal.replay` rebuilds the run state from the file and
is deliberately forgiving at the tail: a truncated final line (the
mid-write kill) is ignored, because by the write protocol anything it
described had not happened yet.  Corruption *before* the tail is a real
consistency error and raises :class:`~repro.errors.JournalError`.

Record kinds (each a single JSON object per line):

``campaign_start``  schema, run id, total scenario count
``scenario``        index, content key, label, full scenario dict
``submit``          index, key, attempt number
``outcome``         index, key, status, attempts, detail, content hash,
                    ``cached`` flag, worker blame (pid when known)
``resume``          a resumed generation opened the journal
``campaign_end``    executed / cached / failed totals
"""

from __future__ import annotations

import json
import os
import secrets
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import JournalError
from repro.experiments.scenario import Scenario, scenario_from_dict

#: Bumped on breaking journal layout changes.
JOURNAL_SCHEMA = 1


def default_journal_dir(cache_dir: Optional[os.PathLike] = None) -> Path:
    """Where journals live: ``<cache dir>/journals``."""
    if cache_dir is None:
        from repro.experiments.campaign import default_cache_dir

        cache_dir = default_cache_dir()
    return Path(cache_dir) / "journals"


def new_run_id() -> str:
    """A sortable, collision-safe campaign run id."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{secrets.token_hex(3)}"


@dataclass
class JournalState:
    """What a replayed journal says about a run."""

    run_id: str
    total: int = 0
    #: scenarios in submission order (rebuilt from their full dicts)
    scenarios: List[Scenario] = field(default_factory=list)
    #: scenario content keys, aligned with ``scenarios``
    keys: List[str] = field(default_factory=list)
    #: key -> last recorded outcome record
    outcomes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: key -> cumulative attempts across all generations
    attempts: Dict[str, int] = field(default_factory=dict)
    #: how many generations (initial run + resumes) touched this journal
    generations: int = 0
    #: records whose JSON was unparseable mid-file (see ``replay(strict=)``)
    skipped_records: int = 0
    #: True when a truncated trailing line was dropped (mid-write kill)
    torn_tail: bool = False

    def completed_keys(self) -> set:
        """Keys whose last outcome produced a result (ok or cached)."""
        return {
            key for key, rec in self.outcomes.items()
            if rec.get("status") in ("ok", "cached")
        }

    def pending(self) -> List[int]:
        """Indices of scenarios without a successful outcome, in order."""
        done = self.completed_keys()
        return [i for i, key in enumerate(self.keys) if key not in done]


class CampaignJournal:
    """Append-only, fsync'd JSONL journal for one campaign run."""

    def __init__(self, path: os.PathLike, run_id: str) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self._fh = None

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Optional[os.PathLike] = None,
        run_id: Optional[str] = None,
    ) -> "CampaignJournal":
        """Start a fresh journal (fails if the run id already exists)."""
        directory = Path(directory) if directory else default_journal_dir()
        run_id = run_id or new_run_id()
        path = directory / f"{run_id}.jsonl"
        if path.exists():
            raise JournalError(f"journal for run {run_id!r} already exists: {path}")
        directory.mkdir(parents=True, exist_ok=True)
        return cls(path, run_id)

    @classmethod
    def open(
        cls, run_id: str, directory: Optional[os.PathLike] = None
    ) -> "CampaignJournal":
        """Open an existing journal for resume (must exist)."""
        directory = Path(directory) if directory else default_journal_dir()
        path = directory / f"{run_id}.jsonl"
        if not path.exists():
            known = ", ".join(r["run_id"] for r in list_runs(directory)) or "none"
            raise JournalError(
                f"no journal for run {run_id!r} in {directory} (known: {known})"
            )
        return cls(path, run_id)

    # -- writing -------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record: single write + flush + fsync.

        The record is written as one line; ``os.fsync`` makes it stable
        before the caller proceeds, so the journal can never claim an
        outcome that the kernel might still lose.
        """
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay --------------------------------------------------------------

    def replay(self, strict: bool = True) -> JournalState:
        """Rebuild the run state from the file.

        A truncated *final* line is silently dropped (the write protocol
        guarantees it described nothing that completed).  Garbage before
        the tail raises :class:`JournalError` when ``strict`` (the
        default); ``strict=False`` counts it in ``skipped_records`` and
        keeps going.
        """
        state = JournalState(run_id=self.run_id)
        raw = self.path.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        # A journal that was killed mid-append has a non-empty final
        # element (no trailing newline): the torn tail.
        tail = lines.pop()
        complete = [ln for ln in lines if ln]
        if tail.strip():
            try:
                json.loads(tail)
            except ValueError:
                state.torn_tail = True
            else:
                # fully written, just missing its newline (close() without
                # a final append never does this, but be permissive)
                complete.append(tail)
        for lineno, line in enumerate(complete, start=1):
            try:
                record = json.loads(line)
            except ValueError:
                if strict:
                    raise JournalError(
                        f"corrupt journal record at {self.path}:{lineno}"
                    )
                state.skipped_records += 1
                continue
            self._apply(state, record)
        return state

    @staticmethod
    def _apply(state: JournalState, record: Dict[str, Any]) -> None:
        kind = record.get("kind")
        if kind == "campaign_start":
            schema = record.get("schema")
            if schema != JOURNAL_SCHEMA:
                raise JournalError(
                    f"unsupported journal schema {schema!r} "
                    f"(this build reads {JOURNAL_SCHEMA})"
                )
            state.total = int(record.get("total", 0))
            state.generations += 1
        elif kind == "resume":
            state.generations += 1
        elif kind == "scenario":
            index = int(record["index"])
            scenario = scenario_from_dict(record["scenario"])
            while len(state.scenarios) <= index:
                state.scenarios.append(None)  # type: ignore[arg-type]
                state.keys.append("")
            state.scenarios[index] = scenario
            state.keys[index] = record["key"]
        elif kind == "submit":
            key = record["key"]
            state.attempts[key] = state.attempts.get(key, 0) + 1
        elif kind == "outcome":
            state.outcomes[record["key"]] = record
        # campaign_end and unknown kinds carry no replay state (unknown
        # kinds are forward compatibility: newer writers, older readers)

    def state(self) -> JournalState:
        """Shorthand: strict :meth:`replay` with hole validation."""
        state = self.replay(strict=True)
        missing = [i for i, s in enumerate(state.scenarios) if s is None]
        if missing:
            raise JournalError(
                f"journal {self.path} lost scenario records {missing}"
            )
        return state


def list_runs(directory: Optional[os.PathLike] = None) -> List[Dict[str, Any]]:
    """Every journal in ``directory``, newest first."""
    directory = Path(directory) if directory else default_journal_dir()
    if not directory.is_dir():
        return []
    out = []
    for path in directory.glob("*.jsonl"):
        try:
            stat = path.stat()
        except OSError:
            continue
        out.append({
            "run_id": path.stem,
            "path": str(path),
            "mtime": stat.st_mtime,
            "bytes": stat.st_size,
        })
    out.sort(key=lambda r: r["mtime"], reverse=True)
    return out
