"""Deterministic fault injection: declarative chaos plans + an injector.

See :mod:`repro.faults.plan` for the plan vocabulary and
:mod:`repro.faults.injector` for how plans become scheduled sim events.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BurstLoss,
    FAULT_KINDS,
    Fault,
    FaultPlan,
    HostCrash,
    NicDegrade,
    NicFlap,
    PSCrash,
    RecoverySpec,
    Straggler,
    plan_from_dict,
)

__all__ = [
    "BurstLoss",
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "HostCrash",
    "NicDegrade",
    "NicFlap",
    "PSCrash",
    "RecoverySpec",
    "Straggler",
    "plan_from_dict",
]
