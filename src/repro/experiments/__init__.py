"""Experiment harness: scenarios, runtime, campaigns, per-figure generators.

The pipeline is layered (see ``docs/architecture.md``, "Campaign layer"):

* :mod:`repro.experiments.scenario` — declarative, picklable descriptions
  of one run (config + placement override + tags);
* :mod:`repro.experiments.runtime` — materializes a scenario into a live
  ``Simulator``/``Cluster``/``DLApplication`` stack and collects a
  serializable :class:`ExperimentResult`;
* :mod:`repro.experiments.campaign` — executes scenario lists through
  pluggable serial/parallel executors with an on-disk result cache;
* :mod:`repro.experiments.study` — the declarative layer above: a
  component registry (every tunable mechanism declared once, config
  field or build hook), grid/OAT expansion into content-hashable
  scenarios, and the ranked component-impact study.

Every table and figure in the paper's evaluation has a generator module
under :mod:`repro.experiments.figures` and a benchmark under
``benchmarks/`` that prints the same rows/series the paper reports.
"""

from repro.experiments.campaign import (
    Campaign,
    CampaignEvent,
    CampaignFailure,
    CampaignResult,
    ExecutionOutcome,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
)
from repro.experiments.config import Architecture, ExperimentConfig, Policy
from repro.experiments.runner import run_experiment
from repro.experiments.runtime import ExperimentResult, execute_scenario, materialize
from repro.experiments.scenario import Scenario, scenario_grid

__all__ = [
    "Architecture",
    "Campaign",
    "CampaignEvent",
    "CampaignFailure",
    "CampaignResult",
    "ExecutionOutcome",
    "ExperimentConfig",
    "ExperimentResult",
    "ParallelExecutor",
    "Policy",
    "ResultCache",
    "Scenario",
    "SerialExecutor",
    "execute_scenario",
    "materialize",
    "run_experiment",
    "scenario_grid",
]
