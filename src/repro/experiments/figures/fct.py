"""Flow-completion-time tails (supplementary analysis, not a paper figure).

The paper measures stragglers at the application layer (barrier waits);
this view measures them at the network layer: the distribution of
model-update FCTs under each policy at placement #1.  Under FIFO every
fan-out transfer stretches toward the collision-window tail; under
TensorLights the high-priority jobs' transfers collapse to their
serialization time and the overall tail-to-median ratio drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cluster import Cluster, ClusterScheduler
from repro.dl import DLApplication, JobSpec
from repro.dl.model_zoo import get_model
from repro.experiments.config import ExperimentConfig, Policy
from repro.experiments.figures.common import base_config
from repro.experiments.report import TextTable
from repro.net.link import Link
from repro.sim import Simulator
from repro.telemetry.flows import FlowCollector
from repro.tensorlights import TensorLights, TLMode


@dataclass
class FctResult:
    collectors: Dict[Policy, FlowCollector]
    kind: str = "model_update"

    def percentile(self, policy: Policy, p: float) -> float:
        return self.collectors[policy].percentile(self.kind, p)

    def tail_ratio(self, policy: Policy, p: float = 99.0) -> float:
        return self.collectors[policy].tail_ratio(self.kind, p)

    def render(self) -> str:
        table = TextTable(
            ["Policy", "p50 FCT (s)", "p90", "p99", "p99/p50"],
            title=(
                "Model-update flow completion times at placement #1 "
                "(network-layer straggler view)"
            ),
        )
        for policy, c in self.collectors.items():
            table.add_row(
                policy.value,
                c.percentile(self.kind, 50),
                c.percentile(self.kind, 90),
                c.percentile(self.kind, 99),
                self.tail_ratio(policy),
            )
        return table.render()


def _run_with_collector(cfg: ExperimentConfig, policy: Policy) -> FlowCollector:
    sim = Simulator(seed=cfg.seed)
    cluster = Cluster(
        sim, n_hosts=cfg.n_hosts, cores_per_host=cfg.cores_per_host,
        link=Link(rate=cfg.link_rate), segment_bytes=cfg.segment_bytes,
        window_segments=cfg.window_segments, window_jitter=cfg.window_jitter,
        switch_buffer_bytes=cfg.switch_buffer_bytes, rto=cfg.rto,
    )
    collector = FlowCollector.install(cluster.network)
    scheduler = ClusterScheduler(cluster.host_ids)
    ps_hosts = scheduler.ps_hosts_for_placement(cfg.placement())
    model = get_model(cfg.model)
    controller = None
    if policy in (Policy.TLS_ONE, Policy.TLS_RR):
        controller = TensorLights(
            cluster,
            mode=TLMode.ONE if policy == Policy.TLS_ONE else TLMode.RR,
            interval=cfg.tls_interval, max_bands=cfg.max_bands,
        )
    for j in range(cfg.n_jobs):
        spec = JobSpec(
            job_id=f"job{j:02d}", model=model, n_workers=cfg.n_workers,
            local_batch_size=cfg.local_batch_size,
            target_global_steps=cfg.target_global_steps,
            arrival_time=j * cfg.launch_stagger,
            compute_jitter_sigma=cfg.compute_jitter_sigma,
        )
        workers = scheduler.worker_hosts(ps_hosts[j], cfg.n_workers)
        app = DLApplication(spec, cluster, ps_hosts[j], workers)
        if controller is not None:
            controller.attach(app)
        app.launch()
    sim.run()
    return collector


def generate(base: Optional[ExperimentConfig] = None, **overrides) -> FctResult:
    """Run placement #1 under all three policies with an FCT collector."""
    cfg = base_config(base, **overrides).replace(placement_index=1)
    collectors = {
        policy: _run_with_collector(cfg, policy)
        for policy in (Policy.FIFO, Policy.TLS_ONE, Policy.TLS_RR)
    }
    return FctResult(collectors=collectors)
