"""Traffic classifiers (``tc filter`` equivalents).

A filter maps a segment to a class/band id.  TensorLights keys on the PS's
TCP **source port**, because in TensorFlow the PS port is fixed for the
lifetime of the job (paper §V, Implementation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TcError
from repro.net.packet import Segment


class FlowFilter:
    """Base classifier: returns a class id for a segment, or None."""

    def classify(self, seg: Segment) -> Optional[int]:
        raise NotImplementedError


class PortFilter(FlowFilter):
    """Classify by source port (and optionally destination port).

    ``add_match(port, classid)`` mirrors
    ``tc filter add ... match ip sport <port> ... flowid 1:<classid>``;
    ``add_range_match(lo, hi, classid)`` mirrors a flower source-port
    range filter (``... flower ip_proto tcp src_port <lo>-<hi>``), the
    scheme ring all-reduce jobs are classified with: one range covers
    every chunk channel a member sends from on its host.
    """

    def __init__(self, default_class: Optional[int] = None) -> None:
        self._by_src: Dict[int, int] = {}
        self._by_dst: Dict[int, int] = {}
        #: (lo, hi) inclusive source-port ranges, first match wins
        self._src_ranges: List[Tuple[int, int, int]] = []
        self.default_class = default_class

    def add_match(self, port: int, classid: int, direction: str = "src") -> None:
        table = self._by_src if direction == "src" else self._by_dst
        table[port] = classid

    def remove_match(self, port: int, direction: str = "src") -> None:
        table = self._by_src if direction == "src" else self._by_dst
        table.pop(port, None)

    def add_range_match(self, lo: int, hi: int, classid: int) -> None:
        """Classify source ports in inclusive ``[lo, hi]`` (add or move)."""
        if lo > hi:
            raise TcError(f"bad port range {lo}-{hi}")
        self.remove_range_match(lo, hi)
        self._src_ranges.append((lo, hi, classid))

    def remove_range_match(self, lo: int, hi: int) -> None:
        """Remove the exact range ``[lo, hi]`` if present."""
        self._src_ranges = [r for r in self._src_ranges if r[:2] != (lo, hi)]

    def classify(self, seg: Segment) -> Optional[int]:
        flow = seg.flow
        classid = self._by_src.get(flow.src_port)
        if classid is not None:
            return classid
        for lo, hi, range_class in self._src_ranges:
            if lo <= flow.src_port <= hi:
                return range_class
        classid = self._by_dst.get(flow.dst_port)
        if classid is not None:
            return classid
        return self.default_class

    @property
    def n_matches(self) -> int:
        return len(self._by_src) + len(self._by_dst) + len(self._src_ranges)
