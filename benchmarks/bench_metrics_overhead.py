"""Overhead guard for the metrics registry (``sim.metrics``).

The registry's contract is *zero-cost when disabled*: every hot-path push
site guards on ``sim.metrics.enabled``, so a run with metrics off must
stay within a few percent of the pre-instrumentation baseline.  This
benchmark enforces that, and reports (informationally) what enabling the
registry actually costs.

Runnable directly — the metrics-smoke CI job does::

    python benchmarks/bench_metrics_overhead.py --quick \
        --baseline BENCH_simulator.json --max-regression 0.05

which re-measures the same three end-to-end scenarios as
``bench_simulator_speed`` with the registry disabled (the default code
path), fails if any is more than ``--max-regression`` below the
checked-in events/sec baseline, and writes ``BENCH_metrics.json`` with
both disabled and enabled numbers plus the enabled-overhead percentage.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.runtime import materialize
from repro.experiments.scenario import Scenario
from repro.sim import Simulator

sys.path.insert(0, ".")  # conftest sibling import under pytest rootdir
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_simulator_speed import _bench_scenarios, check_regression  # noqa: E402


def measure_pair(config: ExperimentConfig, repeats: int) -> tuple[dict, dict]:
    """Best-of-``repeats`` events/sec with the registry off and on.

    The two modes are *interleaved* (off, on, off, on, ...) rather than
    measured in separate blocks: machine-speed drift between blocks
    otherwise dominates the overhead ratio on short scenarios.
    """
    best = {False: (0.0, 0.0), True: (0.0, 0.0)}  # metrics -> (rate, dt)
    events = 0
    for _ in range(repeats):
        for metrics in (False, True):
            t0 = time.perf_counter()
            res = materialize(Scenario(config=config), metrics=metrics).run()
            dt = time.perf_counter() - t0
            events = res.sim_events
            rate = events / dt
            if rate > best[metrics][0]:
                best[metrics] = (rate, dt)
    return tuple(
        {
            "sim_events": events,
            "best_seconds": round(best[metrics][1], 4),
            "events_per_sec": round(best[metrics][0]),
        }
        for metrics in (False, True)
    )


def run_overhead_suite(quick: bool = False) -> dict:
    """Measure all scenarios disabled and enabled.

    ``quick`` cuts repeats only — iterations stay at the baseline's 10,
    because events/sec is compared against the full-mode
    ``BENCH_simulator.json`` and shorter runs amortize less setup
    (cluster build, import cost) per event, which would read as a ~20%
    phantom regression.
    """
    iterations = 10
    repeats = 2 if quick else 3
    report: dict = {
        "benchmark": "metrics_overhead",
        "mode": "quick" if quick else "full",
        "iterations": iterations,
        "best_of": repeats,
        "scenarios": {},
    }
    for name, cfg in _bench_scenarios(iterations).items():
        disabled, enabled = measure_pair(cfg, repeats)
        overhead = 1.0 - enabled["events_per_sec"] / disabled["events_per_sec"]
        report["scenarios"][name] = {
            "disabled": disabled,
            "enabled": enabled,
            "enabled_overhead_pct": round(100.0 * overhead, 1),
        }
    return report


def disabled_view(report: dict) -> dict:
    """The disabled-registry numbers in ``BENCH_simulator.json`` shape,
    so :func:`bench_simulator_speed.check_regression` applies directly."""
    return {
        "scenarios": {
            name: entry["disabled"]
            for name, entry in report["scenarios"].items()
        }
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure metrics-registry overhead and write BENCH_metrics.json"
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer iterations and repeats")
    parser.add_argument("--output", default="BENCH_metrics.json",
                        help="report path (default: %(default)s)")
    parser.add_argument("--baseline", default=None,
                        help="BENCH_simulator.json to compare the disabled "
                             "numbers against; exit 1 on regression")
    parser.add_argument("--max-regression", type=float, default=0.05,
                        help="allowed disabled-mode events/sec drop vs the "
                             "baseline (default: %(default)s)")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail if any scenario's *enabled* overhead "
                             "exceeds this fraction (e.g. 0.10); default: "
                             "report only")
    args = parser.parse_args(argv)

    report = run_overhead_suite(quick=args.quick)
    for name, entry in report["scenarios"].items():
        print(f"{name:20s} disabled {entry['disabled']['events_per_sec']:>12,} ev/s"
              f"   enabled {entry['enabled']['events_per_sec']:>12,} ev/s"
              f"   overhead {entry['enabled_overhead_pct']:>5.1f}%")

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = check_regression(
            disabled_view(report), baseline, args.max_regression
        )
        if failures:
            print("METRICS OVERHEAD REGRESSION (registry disabled):")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"disabled-registry throughput within {args.max_regression:.0%} "
              f"of {args.baseline}")

    if args.max_overhead is not None:
        over = [
            f"{name}: {entry['enabled_overhead_pct']:.1f}% enabled overhead "
            f"> {100 * args.max_overhead:.0f}% allowed"
            for name, entry in report["scenarios"].items()
            if entry["enabled_overhead_pct"] > 100.0 * args.max_overhead
        ]
        if over:
            print("ENABLED-METRICS OVERHEAD TOO HIGH:")
            for line in over:
                print(f"  {line}")
            return 1
        print(f"enabled-metrics overhead within {args.max_overhead:.0%} "
              "on every scenario")
    return 0


def test_disabled_guard_is_cheap(benchmark):
    """1M guarded push-site checks against a disabled registry."""
    sim = Simulator()
    metrics = sim.metrics

    def run():
        n = 0
        for _ in range(1_000_000):
            if metrics.enabled:
                metrics.counter("x").inc()  # pragma: no cover
            n += 1
        return n

    assert benchmark(run) == 1_000_000


def test_counter_push_throughput(benchmark):
    """100k enabled counter increments through the get-or-create path."""
    sim = Simulator()
    sim.metrics.enabled = True
    metrics = sim.metrics

    def run():
        for i in range(100_000):
            metrics.counter("tx", host="h00").inc()
        return metrics.counter("tx", host="h00").value

    assert benchmark(run) > 0


if __name__ == "__main__":
    raise SystemExit(main())
