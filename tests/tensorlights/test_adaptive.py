"""Tests for the adaptive (contention-triggered) TensorLights controller."""

import pytest

from repro.cluster import Cluster
from repro.dl import DLApplication, JobSpec
from repro.dl.model_zoo import ModelSpec
from repro.errors import ConfigError
from repro.net.link import Link
from repro.net.qdisc import HTBQdisc, PFifo
from repro.sim import Simulator
from repro.tensorlights import AdaptiveTensorLights, TLMode

HEAVY_MODEL = ModelSpec("heavy", n_params=2_000_000, per_sample_compute=0.005)
LIGHT_MODEL = ModelSpec("light", n_params=10_000, per_sample_compute=0.05)


def build(model, n_jobs=4, link_rate=0.3e9, check_interval=0.2, steps=20):
    sim = Simulator(seed=4)
    cluster = Cluster(sim, n_hosts=7, link=Link(rate=link_rate),
                      segment_bytes=64 * 1024, window_jitter=0.5)
    tl = AdaptiveTensorLights(cluster, mode=TLMode.ONE,
                              check_interval=check_interval)
    workers = [f"h{i:02d}" for i in range(1, 7)]
    apps = []
    for j in range(n_jobs):
        spec = JobSpec(f"j{j}", model, n_workers=6,
                       target_global_steps=steps * 6)
        app = DLApplication(spec, cluster, ps_host="h00", worker_hosts=workers)
        tl.attach(app)
        apps.append(app)
    return sim, cluster, tl, apps


def test_config_validation():
    sim = Simulator()
    cluster = Cluster(sim, n_hosts=2)
    with pytest.raises(ConfigError):
        AdaptiveTensorLights(cluster, check_interval=0.0)
    with pytest.raises(ConfigError):
        AdaptiveTensorLights(cluster, enable_threshold=0.3,
                             disable_threshold=0.5)


def test_starts_at_fifo_despite_colocation():
    sim, cluster, tl, apps = build(HEAVY_MODEL)
    # Colocated but not yet congested: FIFO stays.
    assert isinstance(cluster.host("h00").nic.qdisc, PFifo)
    assert not tl.is_engaged("h00")


def test_engages_under_contention():
    sim, cluster, tl, apps = build(HEAVY_MODEL)
    for app in apps:
        app.launch()
    engaged_qdiscs = []

    def probe():
        from repro.sim.process import Timeout

        while any(not a.metrics.finished for a in apps):
            yield Timeout(0.2)
            engaged_qdiscs.append(
                (tl.is_engaged("h00"),
                 type(cluster.host("h00").nic.qdisc).__name__)
            )

    sim.spawn(probe(), name="probe")
    sim.run()
    assert tl.engage_events >= 1
    assert any(e and q == "HTBQdisc" for e, q in engaged_qdiscs)
    assert all(a.metrics.finished for a in apps)


def test_never_engages_without_contention():
    """Light traffic on a fast link: the NIC never saturates."""
    sim, cluster, tl, apps = build(LIGHT_MODEL, link_rate=1.25e9)
    for app in apps:
        app.launch()
    sim.run()
    assert tl.engage_events == 0
    assert isinstance(cluster.host("h00").nic.qdisc, PFifo)


def test_disengages_when_contention_subsides():
    sim, cluster, tl, apps = build(HEAVY_MODEL)
    for app in apps:
        app.launch()
    sim.run()
    # after completion, either disengaged explicitly or removed via detach
    assert isinstance(cluster.host("h00").nic.qdisc, PFifo)
