"""The host NIC: serializes outbound segments through a pluggable qdisc.

This is where TensorLights intervenes.  The NIC owns exactly one egress
qdisc (FIFO unless `tc` replaced it); it drains the qdisc at link rate and
notifies the transport when each segment has been serialized (the ACK-clock
hook that keeps per-flow windows full).
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import NetworkError
from repro.net.packet import Segment
from repro.net.qdisc.base import Qdisc
from repro.net.qdisc.fifo import PFifo

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: Guard against zero-progress retry loops in shaped qdiscs.
_MIN_RETRY_DELAY = 1e-9


class NIC:
    """A full-duplex network interface.

    TX: ``send`` enqueues into the qdisc; an internal serializer drains it
    at ``rate`` bytes/second.  RX: the wired peer calls ``receive``.

    Callbacks:
        on_segment_sent(segment): fired when a segment finishes serializing
            (transport window refill).
        on_receive(segment): fired on segment arrival.
        deliver(segment): wired by the topology — where serialized segments
            go next (the switch ingress), after link latency.
    """

    __slots__ = (
        "sim",
        "host_id",
        "rate",
        "qdisc",
        "loss_tolerant",
        "on_segment_sent",
        "on_receive",
        "on_segment_dropped",
        "_deliver",
        "_link_latency",
        "_fab_switch",
        "_fab_ports",
        "_rx_settle",
        "_tx_busy",
        "_retry_event",
        "_m_gen",
        "_m_tx_bytes",
        "_m_tx_segments",
        "bytes_tx",
        "bytes_rx",
        "segments_tx",
        "segments_rx",
        "busy_time",
        "_busy_since",
    )

    def __init__(
        self,
        sim: "Simulator",
        host_id: str,
        rate: float,
        qdisc: Optional[Qdisc] = None,
    ) -> None:
        if rate <= 0:
            raise NetworkError(f"NIC rate must be positive, got {rate}")
        self.sim = sim
        self.host_id = host_id
        self.rate = rate
        self.qdisc: Qdisc = qdisc if qdisc is not None else PFifo()
        #: when True, an enqueue-time drop (e.g. netem loss) is reported
        #: through ``on_segment_dropped`` instead of raising — required
        #: for lossy qdiscs at a host NIC (robustness experiments)
        self.loss_tolerant = False
        self.on_segment_sent: Optional[Callable[[Segment], None]] = None
        self.on_receive: Optional[Callable[[Segment], None]] = None
        #: fired when the egress qdisc AQM-drops an accepted segment
        self.on_segment_dropped: Optional[Callable[[Segment], None]] = None
        self.qdisc.on_drop = self._handle_qdisc_drop
        self._deliver: Optional[Callable[[Segment], None]] = None
        self._link_latency = 0.0
        #: fast-path hooks: the fabric switch and its dst->port table —
        #: serialized segments route straight into their egress port
        #: (no ingress event), with the switch-level routing inlined into
        #: ``_tx_done`` (one call frame per segment saved)
        self._fab_switch = None
        self._fab_ports: Optional[dict] = None
        #: fast-path hook: flush lazily-deferred deliveries into this NIC
        #: before a reader samples the RX counters
        self._rx_settle: Optional[Callable[[], None]] = None

        self._tx_busy = False
        self._retry_event = None

        # Per-site metric handle cache (see MetricsRegistry.generation).
        self._m_gen = -1
        self._m_tx_bytes = None
        self._m_tx_segments = None

        # counters
        self.bytes_tx = 0
        self.bytes_rx = 0
        self.segments_tx = 0
        self.segments_rx = 0
        self.busy_time = 0.0
        self._busy_since = 0.0

    # -- wiring ---------------------------------------------------------

    def attach_link(self, deliver: Callable[[Segment], None], latency: float) -> None:
        """Connect the TX side to a peer (done by the topology builder)."""
        self._deliver = deliver
        self._link_latency = latency

    def set_qdisc(self, qdisc: Qdisc) -> None:
        """``tc qdisc replace``: swap the egress qdisc.

        Divergence from Linux (documented in DESIGN.md): the backlog of the
        old qdisc is migrated into the new one instead of dropped, so a
        reconfiguration mid-experiment never silently loses traffic.
        """
        now = self.sim.now
        pending = self.qdisc.drain_all(now)
        self.qdisc = qdisc
        self.qdisc.on_drop = self._handle_qdisc_drop
        for seg in pending:
            if not qdisc.enqueue(seg, now):
                raise NetworkError("new qdisc dropped migrated backlog")
        self._cancel_retry()
        self._kick()

    # -- TX path ----------------------------------------------------------

    def set_rate(self, rate: float) -> None:
        """Change the line rate (fault injection: NIC degradation/flaps).

        A segment already serializing finishes at the old rate; the next
        dequeue sees the new one.
        """
        if rate <= 0:
            raise NetworkError(f"NIC rate must be positive, got {rate}")
        self.rate = rate

    def send(self, seg: Segment) -> None:
        """Hand a segment to the egress qdisc.

        Raises :class:`NetworkError` on drop — queue limits are sized so
        drops never happen in a correctly configured experiment, and a
        loud failure beats a transport that waits forever.  Robustness
        experiments that *want* egress loss (netem) set
        :attr:`loss_tolerant`, which reports the drop to the transport
        (window-slot release + RTO retransmit) instead of raising.
        """
        if not self.qdisc.enqueue(seg, self.sim.now):
            if self.loss_tolerant and self.on_segment_dropped is not None:
                if self.sim.trace.enabled:
                    self.sim.trace.record(
                        "egress_drop", host=self.host_id, flow=str(seg.flow),
                        seg=seg.index,
                    )
                if self.sim.metrics.enabled:
                    self.sim.metrics.counter(
                        "nic_egress_drops", host=self.host_id
                    ).inc()
                self.on_segment_dropped(seg)
                return
            raise NetworkError(
                f"qdisc on {self.host_id} dropped {seg!r} "
                f"(backlog={len(self.qdisc)})"
            )
        # While serializing, the in-flight segment's completion handler
        # starts the next dequeue itself — the kick would be a no-op.
        if not self._tx_busy:
            self._kick()

    def _kick(self) -> None:
        if self._tx_busy:
            return
        sim = self.sim
        now = sim.now
        seg = self.qdisc.dequeue(now)
        if seg is None:
            if len(self.qdisc) > 0:
                self._arm_retry()
            return
        if self._retry_event is not None:
            sim.cancel(self._retry_event)
            self._retry_event = None
        self._tx_busy = True
        self._busy_since = now
        sim.schedule_fire(seg.size / self.rate, self._tx_done, (seg,))

    def _tx_done(self, seg: Segment) -> None:
        sim = self.sim
        now = sim.now
        self.busy_time += now - self._busy_since
        size = seg.size
        self.bytes_tx += size
        self.segments_tx += 1
        if sim.trace.enabled:
            sim.trace.record(
                "nic_tx", host=self.host_id, flow=str(seg.flow), seg=seg.index,
                msg=seg.message.msg_id, size=size,
            )
        metrics = sim.metrics
        if metrics.enabled:
            # Counter handles are resolved once per registry generation —
            # the per-segment label-tuple rebuild in MetricsRegistry._get
            # was the bulk of the metrics-enabled overhead.
            if metrics.generation != self._m_gen:
                self._m_gen = metrics.generation
                self._m_tx_bytes = metrics.counter(
                    "nic_tx_bytes", host=self.host_id
                )
                self._m_tx_segments = metrics.counter(
                    "nic_tx_segments", host=self.host_id
                )
            # Counter.inc inlined (size is validated positive): two
            # method frames per serialized segment were ~1/3 of the
            # remaining metrics-enabled overhead.
            self._m_tx_bytes.value += size
            self._m_tx_segments.value += 1.0
        ports = self._fab_ports
        if ports is not None:
            # Fast path: route into the egress port now, stamped with the
            # arrival time the elided ingress event would have carried.
            try:
                port = ports[seg.flow.dst_host]
            except KeyError:
                raise NetworkError(
                    f"no fabric port for destination {seg.flow.dst_host!r}"
                ) from None
            self._fab_switch.segments_forwarded += 1
            port.admit(seg, now + self._link_latency)
        else:
            if self._deliver is None:
                raise NetworkError(f"NIC {self.host_id} has no link attached")
            sim.schedule(self._link_latency, self._deliver, (seg,))
        on_sent = self.on_segment_sent
        if on_sent is not None:
            # Window refill: sends land in the qdisc but skip the kick
            # (``_tx_busy`` is still True) — the dequeue below starts the
            # next serialization exactly where the kick would have.
            on_sent(seg)
        nxt = self.qdisc.dequeue(now)
        if nxt is None:
            self._tx_busy = False
            if len(self.qdisc) > 0:
                self._arm_retry()
            return
        if self._retry_event is not None:
            sim.cancel(self._retry_event)
            self._retry_event = None
        self._busy_since = now
        # sim.schedule_fire inlined: this push runs once per serialized
        # segment and the call frame was measurable.  now + size/rate is
        # finite (both operands validated positive at configuration).
        events = sim.events
        seq = events._seq
        events._seq = seq + 1
        heappush(
            events._heap,
            (now + nxt.size / self.rate, 0, seq, None, self._tx_done, (nxt,)),
        )
        events._live += 1

    def _handle_qdisc_drop(self, seg: Segment) -> None:
        """An AQM head drop: notify the local transport."""
        if self.sim.trace.enabled:
            self.sim.trace.record(
                "aqm_drop", host=self.host_id, flow=str(seg.flow),
                seg=seg.index,
            )
        if self.sim.metrics.enabled:
            self.sim.metrics.counter("nic_qdisc_drops", host=self.host_id).inc()
        if self.on_segment_dropped is not None:
            self.on_segment_dropped(seg)

    def _arm_retry(self) -> None:
        ready = self.qdisc.next_ready_time(self.sim.now)
        if ready is None:
            return
        delay = max(ready - self.sim.now, _MIN_RETRY_DELAY)
        armed = self._retry_event
        if armed is not None:
            # Paced qdiscs report the same ready time on every kick while
            # throttled; re-arming at an identical deadline would only
            # feed the tombstone compactor.
            if armed.time == self.sim.now + delay:
                return
            self.sim.cancel(armed)
            self._retry_event = None
        self._retry_event = self.sim.schedule(delay, self._retry)

    def _retry(self) -> None:
        self._retry_event = None
        self._kick()

    def _cancel_retry(self) -> None:
        if self._retry_event is not None:
            self.sim.cancel(self._retry_event)
            self._retry_event = None

    # -- RX path ----------------------------------------------------------

    def receive(self, seg: Segment) -> None:
        self.bytes_rx += seg.size
        self.segments_rx += 1
        if self.on_receive is not None:
            self.on_receive(seg)

    def settle_rx(self) -> None:
        """Flush deliveries the fast-path fabric has deferred lazily.

        Mid-run readers of the RX counters (host samplers, invariant
        checks, scrapes) call this first; it matures exactly the
        deliveries packet granularity would have executed by now, so
        sampled series stay byte-identical between the two modes.
        """
        settle = self._rx_settle
        if settle is not None:
            settle()

    # -- monitoring ---------------------------------------------------------

    @property
    def tx_backlog(self) -> int:
        return len(self.qdisc)

    def utilization_snapshot(self) -> dict:
        """Cumulative counters for ifstat-style differencing."""
        self.settle_rx()
        busy = self.busy_time
        if self._tx_busy:
            busy += self.sim.now - self._busy_since
        return {
            "bytes_tx": self.bytes_tx,
            "bytes_rx": self.bytes_rx,
            "busy_time": busy,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NIC {self.host_id} backlog={len(self.qdisc)} busy={self._tx_busy}>"
