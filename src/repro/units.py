"""Unit helpers.

The simulator works in SI base units throughout: **seconds** for time,
**bytes** for data, and **bytes per second** for rates.  These helpers exist
so call sites read like the paper ("10 Gbps links", "1.86 MB updates")
instead of raw exponents.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Decimal kilo/mega/giga for link rates (networking convention).
KBPS = 1e3 / 8.0
MBPS = 1e6 / 8.0
GBPS = 1e9 / 8.0

US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0


def gbps(value: float) -> float:
    """Link rate in gigabits/second -> bytes/second."""
    return value * GBPS


def mbps(value: float) -> float:
    """Link rate in megabits/second -> bytes/second."""
    return value * MBPS


def mib(value: float) -> int:
    """Mebibytes -> bytes (rounded)."""
    return int(round(value * MB))


def kib(value: float) -> int:
    """Kibibytes -> bytes (rounded)."""
    return int(round(value * KB))


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (``1.86 MiB``)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{n:.0f} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(bytes_per_s: float) -> str:
    """Human-readable rate in bits/second (``10.00 Gbps``)."""
    bits = bytes_per_s * 8.0
    for unit, scale in (("Gbps", 1e9), ("Mbps", 1e6), ("Kbps", 1e3)):
        if bits >= scale:
            return f"{bits / scale:.2f} {unit}"
    return f"{bits:.0f} bps"


def fmt_time(seconds: float) -> str:
    """Human-readable duration (``1.23 s``, ``4.56 ms``)."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"
