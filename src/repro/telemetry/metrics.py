"""``metrics`` — the simulation-wide metrics registry.

Counters, gauges and histograms with Prometheus-flavoured names and
labels, owned by the simulator (``sim.metrics``) exactly like the event
tracer (``sim.trace``).  The registry follows the same zero-cost
discipline: it is **disabled by default**, and every hot-path push site
guards on the flag::

    if sim.metrics.enabled:
        sim.metrics.counter("nic_tx_bytes", host=self.host_id).inc(seg.size)

so a disabled registry costs one attribute read per instrumented event —
the overhead budget the simulator speed benchmarks enforce (see
``benchmarks/bench_metrics_overhead.py``).

Instruments are identified by ``(name, labels)``; the first caller of a
name fixes its type, and requesting the same name as a different type
raises (a silent counter/gauge mixup would corrupt every export).
:meth:`MetricsRegistry.snapshot` flattens everything into a JSON-safe
dict that :mod:`repro.telemetry.exporter` serializes as JSONL/CSV keyed
by scenario content hash.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from contextlib import contextmanager
from itertools import accumulate
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.errors import ConfigError

#: Default histogram buckets: log-spaced durations in seconds, spanning
#: sub-microsecond NIC events up to multi-hundred-second training runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0,
)

#: Canonical label rendering: ``name{k=v,k2=v2}`` with keys sorted.
LabelItems = Tuple[Tuple[str, str], ...]


def _render_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (events, bytes, drops)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (backlog depth, scraped cumulative totals)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A distribution: count/sum/min/max plus cumulative bucket counts.

    Buckets are upper bounds; observations above the last bound land in
    the implicit ``+Inf`` bucket (tracked by ``count``).
    """

    __slots__ = ("name", "labels", "buckets", "_raw_counts",
                 "count", "sum", "min", "max")

    def __init__(self, name: str, labels: LabelItems,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ConfigError(f"histogram {name}: buckets must strictly increase")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self._raw_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # One C-level bisect instead of a Python loop over every bucket:
        # observe() runs per message on the transport latency path.
        # Counts are stored per-bucket and cumulated on read (reads are
        # rare — percentile / export), keeping the published
        # ``bucket_counts`` shape identical.
        i = bisect_left(self.buckets, value)
        if i < len(self.buckets):
            self._raw_counts[i] += 1

    @property
    def bucket_counts(self) -> list:
        """Cumulative counts per bucket bound (Prometheus style)."""
        return list(accumulate(self._raw_counts))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in ``[0, 1]``) from buckets.

        Linear interpolation within the bucket containing the target
        rank, Prometheus ``histogram_quantile`` style, clamped to the
        observed ``[min, max]`` so log-spaced buckets cannot produce an
        estimate outside the data.  Ranks landing in the implicit
        ``+Inf`` bucket return ``max``; an empty histogram returns 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"percentile q must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        if target <= 0:
            return self.min
        prev_cum = 0
        lower = self.min
        for bound, cum in zip(self.buckets, self.bucket_counts):
            if cum >= target:
                frac = (target - prev_cum) / (cum - prev_cum)
                est = lower + frac * (bound - lower)
                return min(max(est, self.min), self.max)
            prev_cum = cum
            lower = bound
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        out["buckets"] = {
            f"{bound:g}": n for bound, n in zip(self.buckets, self.bucket_counts)
        }
        out["buckets"]["+Inf"] = self.count
        return out


class MetricsRegistry:
    """Get-or-create instrument store with a global enable flag.

    Mirrors :class:`~repro.sim.trace.Tracer`: created disabled alongside
    the simulator, clock-bound lazily, enabled per run by the caller
    (``materialize(scenario, metrics=True)``) — never by the scenario
    itself, so enabling metrics cannot change scenario identity or any
    simulated result.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._now: Callable[[], float] = lambda: 0.0
        #: Bumped by :meth:`clear`.  Hot instrument sites cache their
        #: Counter/Histogram handles keyed by this generation instead of
        #: re-resolving ``(name, labels)`` per event — resolving rebuilds
        #: the sorted label tuple every call, which dominated the
        #: metrics-enabled overhead.  A stale generation means the cached
        #: handle was dropped by clear() and must be re-resolved.
        self.generation = 0
        #: name -> instrument class (type registry; first caller wins)
        self._types: Dict[str, type] = {}
        self._instruments: Dict[Tuple[str, LabelItems], Any] = {}

    def bind_clock(self, now_fn: Callable[[], float]) -> None:
        """Attach the simulator clock (done lazily to avoid a cycle)."""
        self._now = now_fn

    # -- instrument access (get-or-create) --------------------------------

    def _get(self, cls: type, name: str, labels: Dict[str, Any],
             **extra: Any) -> Any:
        items: LabelItems = tuple(
            sorted((k, str(v)) for k, v in labels.items())
        )
        key = (name, items)
        registered = self._types.get(name)
        if registered is None:
            self._types[name] = cls
        elif registered is not cls:
            raise ConfigError(
                f"metric {name!r} already registered as "
                f"{registered.__name__}, requested as {cls.__name__}"
            )
        inst = self._instruments.get(key)
        if inst is not None:
            return inst
        inst = cls(name, items, **extra)
        self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels: Any) -> Histogram:
        if buckets is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, buckets=buckets)

    @contextmanager
    def span(self, name: str, **labels: Any) -> Iterator[None]:
        """Time a block against the bound (simulation) clock.

        The elapsed simulated duration is observed into histogram
        ``name``.  A no-op when the registry is disabled, so spans can
        wrap hot paths unguarded::

            with sim.metrics.span("tc_reconcile_seconds"):
                controller.reconcile()
        """
        if not self.enabled:
            yield
            return
        start = self._now()
        try:
            yield
        finally:
            self.histogram(name, **labels).observe(self._now() - start)

    # -- export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Flatten every instrument into a JSON-safe dict.

        Schema (``repro.telemetry.exporter`` feeds on this)::

            {"counters":   {"name{k=v}": value, ...},
             "gauges":     {...},
             "histograms": {"name{k=v}": {"count": ..., "sum": ...,
                                          "mean": ..., "min": ..., "max": ...,
                                          "buckets": {"0.001": n, ..., "+Inf": n}}}}
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for (name, labels), inst in sorted(self._instruments.items()):
            key = _render_key(name, labels)
            if isinstance(inst, Counter):
                counters[key] = inst.value
            elif isinstance(inst, Gauge):
                gauges[key] = inst.value
            else:
                histograms[key] = inst.to_dict()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def clear(self) -> None:
        """Drop every instrument (type registrations included)."""
        self._types.clear()
        self._instruments.clear()
        self.generation += 1

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover
        state = "enabled" if self.enabled else "disabled"
        return f"<MetricsRegistry {state} instruments={len(self._instruments)}>"
