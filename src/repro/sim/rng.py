"""Deterministic named random streams.

Every stochastic component draws from its own named stream, derived from a
single root seed via :class:`numpy.random.SeedSequence`.  This gives:

* full-run determinism for a given seed,
* *stability*: adding a new random consumer does not perturb the draws seen
  by existing consumers (streams are independent by name, not by call order).
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent, named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Hash the name into spawn-key material so the stream depends
            # only on (seed, name).
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.stream(name).uniform(low, high))

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """A multiplicative jitter factor with median 1.0.

        Used for compute-time noise: ``duration * lognormal_factor(...)``.
        ``sigma = 0`` returns exactly 1.0 (no randomness consumed).
        """
        if sigma <= 0.0:
            return 1.0
        return float(self.stream(name).lognormal(mean=0.0, sigma=sigma))

    def shuffle(self, name: str, items: list) -> list:
        """Return a shuffled copy of ``items``."""
        out = list(items)
        self.stream(name).shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
