#!/usr/bin/env python
"""Grid search: the paper's motivating workload, end to end.

A DL engineer launches many configurations of the same model concurrently
(paper §II, "Distributed DL at scale").  The cluster scheduler is agnostic
of task roles, so parameter servers colocate; this script shows

1. how PS placement alone changes completion time (Figure 2's point),
2. how TensorLights-RR restores efficiency *and* keeps the search fair so
   the engineer can compare the models' progress (paper §IV-C).

Run:  python examples/grid_search.py
"""

import numpy as np

from repro.api import ExperimentConfig, Policy, Scenario, execute_scenario
from repro.cluster.placement import placement_by_index


def main() -> None:
    # A scaled-down grid search: 8 concurrent jobs, 1 PS + 10 workers each.
    base = ExperimentConfig(
        n_jobs=8,
        n_workers=10,
        iterations=15,
        launch_stagger=0.1,
        link_gbps=2.5,   # scaled fabric: keeps the paper's contention
                         # ratio on the smaller grid search
        seed=11,
    )

    print("Part 1 — PS placement sensitivity (FIFO networking)")
    print(f"{'placement':<22s} {'avg JCT':>9s}")
    jcts = {}
    for index in (1, 4, 8):
        spec = placement_by_index(index, n_jobs=base.n_jobs)
        res = execute_scenario(Scenario(config=base.replace(placement_index=index)))
        jcts[index] = res.avg_jct
        print(f"#{index} ({spec.describe()})".ljust(22), f"{res.avg_jct:9.2f}")
    gap = (max(jcts.values()) / min(jcts.values()) - 1) * 100
    print(f"placement performance gap: {gap:.0f}%  [paper: up to 75%]\n")

    print("Part 2 — grid search on the worst placement, with fairness")
    worst = base.replace(placement_index=1)
    for policy in (Policy.FIFO, Policy.TLS_ONE, Policy.TLS_RR):
        res = execute_scenario(Scenario(config=worst.replace(policy=policy)))
        jct = np.array(sorted(res.jcts.values()))
        print(
            f"  {policy.value:8s} avg JCT {res.avg_jct:6.2f} s | "
            f"finish spread (max-min) {jct[-1] - jct[0]:5.2f} s | "
            f"median straggler var "
            f"{np.median(res.barrier_wait_variances()):.6f}"
        )
    print(
        "\nTLs-One is fastest but unfair (high-priority configs finish far\n"
        "earlier); TLs-RR keeps most of the speedup while rotating\n"
        "priorities so all search instances progress together."
    )


if __name__ == "__main__":
    main()
