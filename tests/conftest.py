"""Global test configuration.

Simulation-heavy property tests legitimately take longer than hypothesis'
default 200 ms deadline, and wall-time deadlines are flaky on shared CI
machines — disable them and cap example counts for a fast suite.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
