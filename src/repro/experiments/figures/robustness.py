"""Robustness experiment: JCT degradation under faults, per policy.

Not a paper figure — this sweep exercises the fault-injection layer:
each policy (FIFO, TLs-One, TLs-RR) runs the same workload under
increasing egress loss rates, and optionally with a mid-run PS crash
plus checkpoint recovery.  Reported per cell: average JCT and its
degradation relative to the same policy's fault-free run — i.e. how
gracefully each scheduler absorbs chaos, not which scheduler wins.

The campaign runs in report mode: a scenario that dies (or times out)
becomes a row in the failure section instead of aborting the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.campaign import Campaign, CampaignFailure
from repro.experiments.config import ExperimentConfig, Policy
from repro.experiments.figures.common import ALL_POLICIES, base_config
from repro.experiments.report import TextTable
from repro.experiments.runtime import ExperimentResult
from repro.experiments.scenario import Scenario
from repro.faults import FaultPlan, PSCrash, RecoverySpec

DEFAULT_LOSSES = (0.0, 0.01, 0.03)


@dataclass
class RobustnessResult:
    #: (policy, loss, crashed) -> result (missing cells failed)
    results: Dict[Tuple[Policy, float, bool], ExperimentResult]
    failures: List[CampaignFailure] = field(default_factory=list)

    def avg_jct(self, policy: Policy, loss: float, crashed: bool = False) -> float:
        return self.results[(policy, loss, crashed)].avg_jct

    def degradation(self, policy: Policy, loss: float, crashed: bool = False) -> float:
        """``avg JCT / fault-free avg JCT`` for the same policy (1.0 = unhurt)."""
        baseline = self.results.get((policy, 0.0, False))
        cell = self.results.get((policy, loss, crashed))
        if baseline is None or cell is None:
            return float("nan")
        return cell.avg_jct / baseline.avg_jct

    def render(self) -> str:
        policies = sorted({k[0] for k in self.results}, key=lambda p: p.value)
        cells = sorted({(k[1], k[2]) for k in self.results})
        headers = ["Condition"]
        for p in policies:
            headers += [f"{p.value} JCT", f"{p.value} degr."]
        table = TextTable(
            headers,
            title="Robustness: avg JCT and degradation vs fault-free run "
                  "(1.0 = unhurt)",
        )
        for loss, crashed in cells:
            label = f"loss={loss:g}" + (" +ps-crash" if crashed else "")
            row: List[object] = [label]
            for p in policies:
                cell = self.results.get((p, loss, crashed))
                row.append(cell.avg_jct if cell is not None else "failed")
                degr = self.degradation(p, loss, crashed)
                row.append(degr if not np.isnan(degr) else "-")
            table.add_row(*row)
        out = table.render()
        if self.failures:
            lines = [f"  {f.describe()}" for f in self.failures]
            out += "\n\nFailed scenarios:\n" + "\n".join(lines)
        return out


def _crash_plan(crash_at: float, crash_recover: float) -> FaultPlan:
    """A recoverable mid-run crash of job00's PS, barrier in proceed mode."""
    return FaultPlan(
        faults=(PSCrash(job="job00", at=crash_at, recover_after=crash_recover),),
        recovery=RecoverySpec(barrier_mode="proceed"),
    )


def scenarios(
    base: Optional[ExperimentConfig] = None,
    losses: Sequence[float] = DEFAULT_LOSSES,
    policies: Sequence[Policy] = ALL_POLICIES,
    ps_crash: bool = False,
    crash_at: float = 0.5,
    crash_recover: float = 0.5,
    **overrides,
) -> List[Scenario]:
    """The loss x policy grid (optionally doubled with a PS-crash variant)."""
    cfg = base_config(base, **overrides)
    out: List[Scenario] = []
    for policy in policies:
        for loss in losses:
            run_cfg = cfg.replace(policy=policy, netem_loss=loss)
            out.append(Scenario(config=run_cfg).with_tags(
                policy=policy.value, loss=loss, crashed=False,
            ))
            if ps_crash:
                out.append(Scenario(
                    config=run_cfg,
                    faults=_crash_plan(crash_at, crash_recover),
                ).with_tags(policy=policy.value, loss=loss, crashed=True))
    return out


def generate(
    base: Optional[ExperimentConfig] = None,
    losses: Sequence[float] = DEFAULT_LOSSES,
    policies: Sequence[Policy] = ALL_POLICIES,
    ps_crash: bool = False,
    crash_at: float = 0.5,
    crash_recover: float = 0.5,
    campaign: Optional[Campaign] = None,
    **overrides,
) -> RobustnessResult:
    """Run the robustness sweep (always in failure-report mode)."""
    grid = scenarios(base, losses, policies, ps_crash, crash_at,
                     crash_recover, **overrides)
    src = campaign if campaign is not None else Campaign()
    camp = src if src.on_failure == "report" else Campaign(
        executor=src.executor,
        cache=src.cache,
        progress=src.progress,
        scenario_timeout=src.scenario_timeout,
        max_attempts=src.max_attempts,
        on_failure="report",
    )
    outcome = camp.run(grid)
    results: Dict[Tuple[Policy, float, bool], ExperimentResult] = {}
    for scenario, result in zip(grid, outcome.results):
        if result is None:
            continue
        key = (
            Policy(scenario.tag("policy")),
            float(scenario.tag("loss")),
            scenario.tag("crashed") == "True",
        )
        results[key] = result
    return RobustnessResult(results=results, failures=list(outcome.failures))
