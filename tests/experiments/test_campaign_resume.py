"""Durable-campaign tests: journaled runs, kill/resume, retry accounting.

The durability contract under test: a campaign killed at ANY point can
be resumed from its write-ahead journal and finishes with per-scenario
result content hashes byte-identical to an uninterrupted run — completed
scenarios served from the cache, only pending ones re-simulated.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    Campaign,
    ExperimentConfig,
    Policy,
    ResultCache,
    Scenario,
)
from repro.experiments.export import result_content_hash
from repro.experiments.journal import JOURNAL_SCHEMA, CampaignJournal
from repro.faults import BurstLoss, FaultPlan, RecoverySpec, Straggler
from repro.faults.chaos import kill_resume_roundtrip

MICRO = ExperimentConfig.tiny(n_jobs=2, n_workers=2, iterations=3)

#: A deterministic chaos plan: the FaultInjector's audit log must come
#: out identical whether the scenario ran before or after a resume.
PLAN = FaultPlan(
    faults=(
        BurstLoss(host="h01", at=0.2, loss=0.05, duration=0.5),
        Straggler(host="h02", at=0.1, slowdown=3.0, duration=0.5),
    ),
    recovery=RecoverySpec(barrier_mode="proceed", barrier_timeout=0.5),
)


def _scenarios():
    return [
        Scenario(config=MICRO.replace(policy=Policy.FIFO)),
        Scenario(config=MICRO.replace(policy=Policy.TLS_ONE)),
        Scenario(config=MICRO.replace(seed=5), faults=PLAN),
    ]


def _hashes(result):
    return [result_content_hash(r) for r in result.results]


def test_journaled_run_then_resume_serves_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    journal_dir = tmp_path / "journals"
    scenarios = _scenarios()

    fresh = Campaign(cache=cache, journal=True, run_id="run-x",
                     journal_dir=journal_dir).run(scenarios)
    assert fresh.run_id == "run-x"
    assert fresh.executed == 3 and fresh.cache_hits == 0

    # Resume without re-specifying the grid: the journal holds the plan.
    resumed = Campaign(cache=cache, resume="run-x",
                       journal_dir=journal_dir).run()
    assert resumed.executed == 0
    assert resumed.cache_hits == 3
    assert _hashes(resumed) == _hashes(fresh)

    state = CampaignJournal.open("run-x", journal_dir).state()
    assert state.generations == 2
    assert state.pending() == []
    # Cumulative attempt accounting survives the resume (still one
    # execution each; the cached second generation adds no submits).
    assert set(state.attempts.values()) == {1}


def test_resume_after_partial_completion_is_byte_identical(tmp_path):
    """Emulated mid-campaign kill: journal records one settled outcome,
    the cache holds that one result; resume executes only the rest."""
    scenarios = _scenarios()
    keys = [s.key() for s in scenarios]
    journal_dir = tmp_path / "journals"

    baseline_cache = ResultCache(tmp_path / "cache-baseline")
    baseline = Campaign(cache=baseline_cache).run(scenarios)

    # Fabricate the journal a campaign killed after outcome #0 leaves.
    resume_cache = ResultCache(tmp_path / "cache-resume")
    resume_cache.put(scenarios[0], baseline.results[0])
    with CampaignJournal.create(journal_dir, "run-killed") as journal:
        journal.append({"kind": "campaign_start", "schema": JOURNAL_SCHEMA,
                        "run_id": "run-killed", "total": 3, "ts": 0.0})
        for index, scenario in enumerate(scenarios):
            journal.append({
                "kind": "scenario", "index": index, "key": keys[index],
                "label": scenario.label, "scenario": scenario.to_dict(),
            })
        journal.append({"kind": "submit", "index": 0, "key": keys[0],
                        "attempt": 1})
        journal.append({
            "kind": "outcome", "index": 0, "key": keys[0], "status": "ok",
            "cached": False, "attempts": 1,
            "content_hash": result_content_hash(baseline.results[0]),
        })

    resumed = Campaign(cache=resume_cache, resume="run-killed",
                       journal_dir=journal_dir).run()
    assert resumed.cache_hits == 1                # the settled outcome
    assert resumed.executed == 2                  # only the pending rest
    assert _hashes(resumed) == _hashes(baseline)

    # FaultInjector determinism across resume: the chaos scenario re-ran
    # in the resumed generation, yet its audit log is event-for-event
    # identical to the uninterrupted run's.
    assert resumed.results[2].fault_events == baseline.results[2].fault_events
    assert resumed.results[2].fault_events      # the plan actually fired


def test_resume_tolerates_torn_journal_tail(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    journal_dir = tmp_path / "journals"
    scenarios = _scenarios()[:1]
    Campaign(cache=cache, journal=True, run_id="run-torn",
             journal_dir=journal_dir).run(scenarios)
    with open(journal_dir / "run-torn.jsonl", "a") as fh:
        fh.write('{"kind": "outcome", "ind')      # killed mid-append

    resumed = Campaign(cache=cache, resume="run-torn",
                       journal_dir=journal_dir).run()
    assert resumed.cache_hits == 1 and not resumed.failures


def test_resume_requires_cache_and_scenarios_or_journal(tmp_path):
    with pytest.raises(ConfigError, match="resume requires a ResultCache"):
        Campaign(resume="run-x")
    with pytest.raises(ConfigError, match="needs scenarios"):
        Campaign().run()


def test_journal_records_worker_blame_and_hashes(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    journal_dir = tmp_path / "journals"
    scenarios = _scenarios()[:2]
    result = Campaign(cache=cache, journal=True, run_id="run-blame",
                      journal_dir=journal_dir).run(scenarios)
    state = CampaignJournal.open("run-blame", journal_dir).state()
    for index, scenario in enumerate(scenarios):
        outcome = state.outcomes[scenario.key()]
        assert outcome["status"] == "ok"
        assert outcome["worker"] is not None      # pid blame
        assert outcome["content_hash"] == result_content_hash(
            result.results[index]
        )


def test_campaign_metrics_exported_with_result(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    scenarios = _scenarios()[:2]
    result = Campaign(cache=cache).run(scenarios)
    counters = result.campaign_metrics["counters"]
    assert counters["campaign_scenarios_total{status=ok}"] == 2
    assert counters["campaign_retries_total"] == 0
    assert counters["campaign_backoff_seconds_total"] == 0
    assert counters["campaign_cache_corrupt_total"] == 0
    # Second run: everything cached, hits counted.
    again = Campaign(cache=cache).run(scenarios)
    assert again.campaign_metrics["counters"]["campaign_cache_hits_total"] == 2


@pytest.mark.slow
def test_chaos_kill_resume_roundtrip_byte_identical(tmp_path):
    """The acceptance scenario, end to end over the real CLI: arm
    ``REPRO_CHAOS_KILL=campaign-after:2``, hard-kill the campaign
    process, resume from the journal, and demand hashes byte-identical
    to an uninterrupted fresh-cache baseline."""
    trip = kill_resume_roundtrip(
        str(tmp_path), kill_after=2, run_id="chaos-test",
        campaign_args=["--placements", "1",
                       "--policies", "fifo", "tls-one", "tls-rr",
                       "--jobs", "2", "--workers", "2", "--iterations", "3"],
    )
    assert trip.kill_returncode == 29
    assert len(trip.interrupted_hashes) == 3
    assert trip.identical(), "\n".join(trip.diff())
    # The resume served the two pre-kill outcomes from the cache.
    assert "cached" in trip.resume_log
