"""Bootstrap confidence intervals for seed-sweep statistics.

Simulations are deterministic per seed, so uncertainty comes from seed
sweeps.  These helpers compute percentile-bootstrap CIs over per-seed
summaries (e.g. avg JCT per seed) and over ratio statistics like the
normalized JCT, which must be resampled *pairwise*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        pct = int(round(self.confidence * 100))
        return f"{self.estimate:.4g} [{self.low:.4g}, {self.high:.4g}] ({pct}% CI)"


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of ``statistic`` over ``samples``."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size < 2:
        raise ConfigError("bootstrap needs at least 2 samples")
    if not 0.0 < confidence < 1.0:
        raise ConfigError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[idx])
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(arr)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_ratio_ci(
    numerators: Sequence[float],
    denominators: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """CI of ``mean(num) / mean(den)`` with *paired* resampling.

    Use for normalized JCT over a seed sweep: numerator and denominator
    of the same seed are correlated, so they must be resampled together.
    """
    num = np.asarray(list(numerators), dtype=float)
    den = np.asarray(list(denominators), dtype=float)
    if num.size != den.size:
        raise ConfigError("paired bootstrap needs equal-length samples")
    if num.size < 2:
        raise ConfigError("bootstrap needs at least 2 samples")
    if (den <= 0).any():
        raise ConfigError("denominators must be positive")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, num.size, size=(n_resamples, num.size))
    ratios = num[idx].mean(axis=1) / den[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(num.mean() / den.mean()),
        low=float(np.quantile(ratios, alpha)),
        high=float(np.quantile(ratios, 1.0 - alpha)),
        confidence=confidence,
    )
