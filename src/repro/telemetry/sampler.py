"""Periodic host samplers (vmstat / ifstat equivalents)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError
from repro.sim.events import PRIORITY_LOW
from repro.sim.process import Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.sim.kernel import Simulator


@dataclass
class SampleSeries:
    """A sampled time series: per-interval values at 1/interval Hz."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, t: float, v: float) -> None:
        self.times.append(t)
        self.values.append(v)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def __len__(self) -> int:
        return len(self.times)


class HostSampler:
    """Samples one host every ``interval`` seconds.

    Per interval it records (as utilization fractions in [0, 1]):

    * ``cpu``  — busy core-time / (cores x interval)    (vmstat ``us``),
    * ``net_in``  — received bytes / (link rate x interval)  (ifstat in),
    * ``net_out`` — transmitted bytes / (link rate x interval) (ifstat out).

    Samples are stamped with the interval's *end* time, matching how the
    real tools report the just-elapsed second.
    """

    def __init__(self, host: "Host", interval: float = 1.0) -> None:
        if interval <= 0:
            raise ConfigError(f"sampling interval must be positive, got {interval}")
        if host.nic is None:
            raise ConfigError(f"host {host.host_id} has no NIC to sample")
        self.host = host
        self.interval = interval
        self.cpu = SampleSeries()
        self.net_in = SampleSeries()
        self.net_out = SampleSeries()
        self._prev_busy = 0.0
        self._prev_rx = 0
        self._prev_tx = 0
        self._running = False
        self._epoch = 0

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        # A stopped loop may still be parked on its Timeout; bumping the
        # epoch makes it exit on wake instead of resuming alongside the
        # new loop and double-recording every interval.
        self._epoch += 1
        self.host.sim.spawn(
            self._loop(self._epoch), name=f"sampler/{self.host.host_id}"
        )

    def stop(self) -> None:
        self._running = False

    def _loop(self, epoch: int):
        sim = self.host.sim
        # Anchor the first interval at the current time.
        self._snapshot_counters()
        while self._running and epoch == self._epoch:
            yield Timeout(self.interval)
            if not self._running or epoch != self._epoch:
                return
            self._record(sim.now)

    def _snapshot_counters(self) -> None:
        # The fast-path fabric delivers lazily; flush anything that has
        # matured so the sampled counters match packet granularity.
        self.host.nic.settle_rx()
        self._prev_busy = self.host.cpu.utilization_snapshot()
        self._prev_rx = self.host.nic.bytes_rx
        self._prev_tx = self.host.nic.bytes_tx

    def _record(self, now: float) -> None:
        self.host.nic.settle_rx()
        busy = self.host.cpu.utilization_snapshot()
        rx = self.host.nic.bytes_rx
        tx = self.host.nic.bytes_tx
        cores = self.host.cpu.cores
        rate = self.host.nic.rate
        self.cpu.add(now, (busy - self._prev_busy) / (cores * self.interval))
        self.net_in.add(now, (rx - self._prev_rx) / (rate * self.interval))
        self.net_out.add(now, (tx - self._prev_tx) / (rate * self.interval))
        self._prev_busy, self._prev_rx, self._prev_tx = busy, rx, tx
