"""Unit tests for the CoDel AQM qdisc and its local-drop recovery path."""

import pytest

from repro.errors import QdiscError
from repro.net import Link, StarNetwork
from repro.net.addressing import FlowKey
from repro.net.packet import Message
from repro.net.qdisc import CoDelQdisc
from repro.sim import Simulator

from tests.net.helpers import seg


def test_validation():
    with pytest.raises(QdiscError):
        CoDelQdisc(target=0.0)
    with pytest.raises(QdiscError):
        CoDelQdisc(interval=0.0)


def test_passes_through_under_low_delay():
    q = CoDelQdisc(target=0.1, interval=1.0)
    a, b = seg(10), seg(10)
    q.enqueue(a, 0.0)
    q.enqueue(b, 0.0)
    assert q.dequeue(0.01) is a
    assert q.dequeue(0.02) is b
    assert q.aqm_drops == 0


def test_fifo_order_preserved():
    q = CoDelQdisc()
    segs = [seg(10) for _ in range(5)]
    for s in segs:
        q.enqueue(s, 0.0)
    out = [q.dequeue(0.001) for _ in range(5)]
    assert out == segs


def test_drops_head_after_persistent_delay():
    """Sojourn above target for > interval triggers head drops."""
    q = CoDelQdisc(target=0.005, interval=0.05)
    dropped = []
    q.on_drop = dropped.append
    for _ in range(20):
        q.enqueue(seg(10), 0.0)
    # first dequeue at t=0.2: sojourn 0.2 >> target; arms first_above
    s1 = q.dequeue(0.2)
    assert s1 is not None and q.aqm_drops == 0
    # next dequeue past the interval: enters dropping, head-drops
    s2 = q.dequeue(0.3)
    assert s2 is not None
    assert q.aqm_drops >= 1
    assert len(dropped) == q.aqm_drops
    assert q.drops == q.aqm_drops


def test_leaves_dropping_state_when_delay_recovers():
    q = CoDelQdisc(target=0.005, interval=0.05)
    for _ in range(10):
        q.enqueue(seg(10), 0.0)
    q.dequeue(0.2)
    q.dequeue(0.3)  # dropping
    assert q._dropping
    # fresh traffic with low sojourn
    q.drain_all(0.3)
    q.enqueue(seg(10), 0.300)
    q.dequeue(0.301)
    assert not q._dropping


def test_tail_limit_still_applies():
    q = CoDelQdisc(limit=2)
    assert q.enqueue(seg(10), 0.0)
    assert q.enqueue(seg(10), 0.0)
    assert not q.enqueue(seg(10), 0.0)


def test_accounting():
    q = CoDelQdisc()
    q.enqueue(seg(10), 0.0)
    q.enqueue(seg(30), 0.0)
    assert len(q) == 2 and q.backlog_bytes == 40
    q.drain_all(0.0)
    assert len(q) == 0 and q.backlog_bytes == 0


def test_local_aqm_drop_recovers_via_transport():
    """End to end: a CoDel egress qdisc drops under sustained overload,
    the transport releases the window slot, retransmits, and the message
    is still delivered in full."""
    sim = Simulator(seed=1)
    net = StarNetwork(sim, ["a", "b"], link=Link(rate=1000.0, latency=0.0),
                      segment_bytes=100, window_segments=8, rto=0.05)
    # Aggressive CoDel so drops definitely occur at 1 kB/s.
    net.nic("a").set_qdisc(CoDelQdisc(target=0.001, interval=0.01))
    got = []
    net.transport("b").listen(6000, got.append)
    net.transport("a").send_message(
        Message(flow=FlowKey("a", 1, "b", 6000), size=5000)
    )
    sim.run()
    assert len(got) == 1
    assert net.nic("b").bytes_rx == 5000
    assert net.nic("a").qdisc.aqm_drops > 0
    assert net.transport("a").segments_retransmitted >= 1
