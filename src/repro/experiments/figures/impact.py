"""The component-impact figure: which mechanism earns its JCT share.

Not a figure from the paper, but the study its evaluation implies: knock
each registered component out of the full TensorLights system (TLs-RR on
the paper's contended placement) one at a time, replicate over a seed
sweep, and rank the components by how far the knockout moves the JCT
ratio from 1.0 — with paired bootstrap confidence intervals so a rank is
a claim, not noise.  Everything is generated declaratively by
:func:`repro.experiments.study.impact.run_study` and runs as one
:class:`~repro.experiments.campaign.Campaign` submission.

``generate(quick=True)`` is the CI smoke configuration: a tiny config,
two components, two seeds — enough to exercise grid generation, build
hooks, the parallel executor, and the cache in seconds.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.campaign import Campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.study.impact import ImpactReport, run_study

#: The two-component fractional grid ``--quick`` (and CI) runs: one
#: config-field knockout and one that exercises nothing but the config
#: layer would be too easy — ``bands`` is TLs-only, ``slow_start`` goes
#: through a registered build hook, so the smoke covers both paths.
QUICK_COMPONENTS: Tuple[str, ...] = ("bands", "slow_start")


def generate(
    base: Optional[ExperimentConfig] = None,
    quick: bool = False,
    components: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[int]] = None,
    campaign: Optional[Campaign] = None,
    confidence: float = 0.95,
    **overrides,
) -> ImpactReport:
    """Run the component-impact study (optionally the quick CI subset).

    Args:
        base: starting configuration; default ``ExperimentConfig()``
            (or ``ExperimentConfig.tiny()`` under ``quick``).
        quick: CI smoke mode — tiny config, ``QUICK_COMPONENTS``, two
            seeds, unless those are given explicitly.
        components / seeds / campaign / confidence: forwarded to
            :func:`repro.experiments.study.impact.run_study`.
    """
    if quick:
        if base is None:
            base = ExperimentConfig.tiny()
        if components is None:
            components = QUICK_COMPONENTS
        if seeds is None:
            seeds = (base.seed, base.seed + 1)
    return run_study(
        base=base,
        components=components,
        seeds=seeds,
        campaign=campaign,
        confidence=confidence,
        **overrides,
    )
