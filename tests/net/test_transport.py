"""Unit and property tests for the windowed transport."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.net import Link, StarNetwork
from repro.net.addressing import FlowKey
from repro.net.packet import Message
from repro.sim import Simulator


def two_hosts(rate=1000.0, segment_bytes=100, window=2):
    sim = Simulator()
    net = StarNetwork(
        sim, ["a", "b"], link=Link(rate=rate, latency=0.0),
        segment_bytes=segment_bytes, window_segments=window,
    )
    return sim, net


def test_invalid_window():
    sim = Simulator()
    with pytest.raises(NetworkError):
        StarNetwork(sim, ["a"], window_segments=0)


def test_send_from_wrong_host_rejected():
    sim, net = two_hosts()
    msg = Message(flow=FlowKey("b", 1, "a", 2), size=10)
    with pytest.raises(NetworkError, match="originate"):
        net.transport("a").send_message(msg)


def test_message_delivered_once_fully_reassembled():
    sim, net = two_hosts(segment_bytes=100)
    got = []
    net.transport("b").listen(6000, lambda m: got.append(sim.now))
    net.transport("a").send_message(Message(flow=FlowKey("a", 5000, "b", 6000), size=350))
    sim.run()
    assert len(got) == 1
    # four segments (100,100,100,50 B) through two store-and-forward hops
    # at 1 kB/s: the switch port is busy until 0.40 s when the last segment
    # (arrived 0.35 s) starts; it completes at 0.45 s.
    assert got[0] == pytest.approx(0.45)


def test_no_listener_raises():
    sim, net = two_hosts()
    net.transport("a").send_message(Message(flow=FlowKey("a", 5000, "b", 6000), size=10))
    with pytest.raises(Exception):  # ProcessError-free path: direct callback
        sim.run()


def test_duplicate_listener_rejected():
    sim, net = two_hosts()
    net.transport("b").listen(6000, lambda m: None)
    with pytest.raises(NetworkError):
        net.transport("b").listen(6000, lambda m: None)


def test_unlisten_allows_rebinding():
    sim, net = two_hosts()
    net.transport("b").listen(6000, lambda m: None)
    net.transport("b").unlisten(6000)
    net.transport("b").listen(6000, lambda m: None)


def test_window_limits_qdisc_occupancy():
    """At most `window` segments of one flow sit in the NIC at a time."""
    sim, net = two_hosts(segment_bytes=100, window=2)
    net.transport("b").listen(6000, lambda m: None)
    net.transport("a").send_message(Message(flow=FlowKey("a", 5000, "b", 6000), size=1000))
    # Right after send: window segments admitted (1 serializing, 1 queued).
    assert net.nic("a").tx_backlog <= 2
    max_seen = []

    def sample():
        max_seen.append(net.nic("a").tx_backlog)
        if sim.events:
            sim.schedule(0.01, sample)

    sim.schedule(0.0, sample)
    sim.run()
    assert max(max_seen) <= 2


def test_two_flows_interleave_in_fifo():
    """Concurrent flows share the FIFO NIC roughly fairly — both messages
    complete near the *end* of the contention window (the straggler
    mechanism from the paper)."""
    sim = Simulator()
    net = StarNetwork(
        sim, ["a", "b", "c"], link=Link(rate=1000.0, latency=0.0),
        segment_bytes=100, window_segments=2,
    )
    done = {}
    net.transport("b").listen(6000, lambda m: done.setdefault("b", sim.now))
    net.transport("c").listen(6000, lambda m: done.setdefault("c", sim.now))
    net.transport("a").send_message(Message(flow=FlowKey("a", 5000, "b", 6000), size=1000))
    net.transport("a").send_message(Message(flow=FlowKey("a", 5001, "c", 6000), size=1000))
    sim.run()
    # 2000 B total at 1 kB/s -> window ends ~2 s; both finish in the last
    # quarter of the window (fair sharing, not serial completion).
    assert done["b"] > 1.5 and done["c"] > 1.5


def test_flow_state_cleanup():
    sim, net = two_hosts()
    t = net.transport("a")
    net.transport("b").listen(6000, lambda m: None)
    t.send_message(Message(flow=FlowKey("a", 5000, "b", 6000), size=1000))
    assert t.active_flows == 1
    sim.run()
    assert t.active_flows == 0
    assert t.messages_sent == 1
    assert net.transport("b").messages_delivered == 1


def test_messages_on_same_flow_delivered_in_order():
    sim, net = two_hosts(segment_bytes=100)
    got = []
    net.transport("b").listen(6000, lambda m: got.append(m.msg_id))
    flow = FlowKey("a", 5000, "b", 6000)
    msgs = [Message(flow=flow, size=250) for _ in range(3)]
    for m in msgs:
        net.transport("a").send_message(m)
    sim.run()
    assert got == [m.msg_id for m in msgs]


@settings(max_examples=20)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=10),
    segment_bytes=st.sampled_from([64, 100, 1000]),
    window=st.integers(min_value=1, max_value=8),
)
def test_property_all_bytes_delivered(sizes, segment_bytes, window):
    """Conservation: every byte sent is delivered, regardless of window."""
    sim = Simulator()
    net = StarNetwork(
        sim, ["a", "b"], link=Link(rate=1e6, latency=1e-6),
        segment_bytes=segment_bytes, window_segments=window,
    )
    delivered = []
    net.transport("b").listen(6000, lambda m: delivered.append(m.size))
    for i, size in enumerate(sizes):
        net.transport("a").send_message(
            Message(flow=FlowKey("a", 5000 + (i % 3), "b", 6000), size=size)
        )
    sim.run()
    assert sorted(delivered) == sorted(sizes)
    assert net.nic("a").bytes_tx == sum(sizes)
    assert net.nic("b").bytes_rx == sum(sizes)


def test_slow_start_ramps_window():
    """With slow_start, a flow begins at cwnd 1 and doubles per window's
    worth of served segments — early segments serialize with gaps."""
    from repro.net.transport import _SendState

    s = _SendState(window=8, slow_start=True)
    assert s.window == 1.0
    served = 0
    while s.window < 8.0 and served < 100:
        s.on_progress()
        served += 1
    assert s.window == 8.0
    assert served == 7  # +1 per segment in slow start


def test_slow_start_end_to_end_still_delivers():
    sim = Simulator()
    net = StarNetwork(
        sim, ["a", "b"], link=Link(rate=1000.0, latency=0.0),
        segment_bytes=100, window_segments=8,
    )
    # rebuild a's transport with slow start (StarNetwork default is off)
    from repro.net.transport import Transport

    t = Transport(sim, net.nics["a"], segment_bytes=100, window_segments=8,
                  slow_start=True)
    net.transports["a"] = t
    got = []
    net.transport("b").listen(6000, got.append)
    t.send_message(Message(flow=FlowKey("a", 1, "b", 6000), size=2000))
    sim.run()
    assert len(got) == 1
    assert net.nic("b").bytes_rx == 2000


def test_loss_exits_slow_start():
    from repro.net.transport import _SendState

    s = _SendState(window=16, slow_start=True)
    for _ in range(3):
        s.on_progress()
    assert s.window == 4.0
    s.on_loss()
    assert s.window == 2.0
    assert s.ssthresh == 2.0
    s.on_progress()  # now congestion avoidance: +1/window
    assert s.window == pytest.approx(2.5)
