"""Unit tests for the units helpers."""

import pytest

from repro import units


def test_byte_constants():
    assert units.KB == 1024
    assert units.MB == 1024 ** 2
    assert units.GB == 1024 ** 3


def test_rate_conversions():
    assert units.gbps(10) == pytest.approx(10e9 / 8)
    assert units.mbps(1) == pytest.approx(1e6 / 8)


def test_byte_helpers():
    assert units.kib(1) == 1024
    assert units.mib(1.5) == int(1.5 * 1024 ** 2)


def test_fmt_bytes():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(1024) == "1.00 KiB"
    assert units.fmt_bytes(1.86 * 1024 ** 2) == "1.86 MiB"


def test_fmt_rate():
    assert units.fmt_rate(units.gbps(10)) == "10.00 Gbps"
    assert units.fmt_rate(units.mbps(5)) == "5.00 Mbps"
    assert units.fmt_rate(10) == "80 bps"


def test_fmt_time():
    assert units.fmt_time(1.5) == "1.50 s"
    assert units.fmt_time(0.0015) == "1.50 ms"
    assert units.fmt_time(2e-6) == "2.0 us"
