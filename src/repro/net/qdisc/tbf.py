"""``tbf`` — token bucket filter (rate shaping).

Wraps a child qdisc.  Segments become eligible only when the bucket holds
enough tokens; tokens refill at ``rate`` bytes/second up to ``burst``
bytes.  Used standalone for the rate-control ablation (paper §VII argues
that inaccurate sender rate allocation loses utilization) and as the
building block of HTB classes.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import QdiscError
from repro.net.packet import Segment
from repro.net.qdisc.base import Qdisc
from repro.net.qdisc.fifo import PFifo


#: Absolute tolerance (in bytes) when testing token availability.  Guards
#: against float-rounding deadlocks where a bucket is short by ~1e-10
#: bytes and the computed refill delay underflows the clock.
TOKEN_EPSILON = 1e-6


class TokenBucket:
    """A plain token bucket: ``rate`` bytes/s refill, ``burst`` bytes cap."""

    __slots__ = ("rate", "burst", "tokens", "last_update")

    def __init__(self, rate: float, burst: float, start_full: bool = True) -> None:
        if rate <= 0:
            raise QdiscError(f"token bucket rate must be positive, got {rate}")
        if burst <= 0:
            raise QdiscError(f"token bucket burst must be positive, got {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst if start_full else 0.0
        self.last_update = 0.0

    def refill(self, now: float) -> None:
        if now > self.last_update:
            self.tokens = min(self.burst, self.tokens + (now - self.last_update) * self.rate)
            self.last_update = now

    def can_consume(self, amount: float, now: float) -> bool:
        self.refill(now)
        return self.tokens >= amount - TOKEN_EPSILON

    def consume(self, amount: float, now: float) -> None:
        self.refill(now)
        self.tokens -= amount  # may go negative when HTB force-charges

    def time_until(self, amount: float, now: float) -> float:
        """Seconds from ``now`` until ``amount`` tokens are available."""
        self.refill(now)
        deficit = amount - TOKEN_EPSILON - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


class TokenBucketFilter(Qdisc):
    """Shapes a child qdisc to ``rate`` bytes/second."""

    work_conserving = False

    def __init__(
        self,
        rate: float,
        burst: float,
        child: Optional[Qdisc] = None,
    ) -> None:
        self.bucket = TokenBucket(rate, burst)
        self.child = child if child is not None else PFifo()
        self.drops = 0

    def enqueue(self, seg: Segment, now: float) -> bool:
        ok = self.child.enqueue(seg, now)
        if not ok:
            self._note_drop()
        return ok

    def _head(self) -> Optional[Segment]:
        # PFifo-specific peek; generic children fall back to None-checking
        # via dequeue/enqueue round trip, which we avoid by requiring PFifo.
        queue = getattr(self.child, "_queue", None)
        if queue:
            return queue[0]
        return None

    def dequeue(self, now: float) -> Optional[Segment]:
        head = self._head()
        if head is None:
            return None
        if not self.bucket.can_consume(head.size, now):
            return None
        seg = self.child.dequeue(now)
        assert seg is head
        self.bucket.consume(seg.size, now)
        return seg

    def next_ready_time(self, now: float) -> Optional[float]:
        head = self._head()
        if head is None:
            return None
        return now + self.bucket.time_until(head.size, now)

    def drain_all(self, now: float) -> list[Segment]:
        return self.child.drain_all(now)

    def __len__(self) -> int:
        return len(self.child)

    @property
    def backlog_bytes(self) -> int:
        return self.child.backlog_bytes
