"""Tests for multi-PS (sharded) jobs — paper §III's 'more general case'."""

import pytest

from repro.cluster import Cluster
from repro.dl import DLApplication, JobSpec
from repro.dl.model_zoo import ModelSpec
from repro.errors import PlacementError
from repro.net.link import Link
from repro.sim import Simulator

MODEL = ModelSpec("tiny", n_params=60_000, per_sample_compute=0.01,
                  ps_update_compute=0.0006)


def make(n_ps, ps_host, sync=True, steps=30, n_hosts=6):
    sim = Simulator(seed=2)
    cluster = Cluster(sim, n_hosts=n_hosts, link=Link(rate=1.25e9),
                      segment_bytes=64 * 1024)
    spec = JobSpec("j", MODEL, n_workers=3, target_global_steps=steps,
                   n_ps=n_ps, sync=sync)
    workers = ["h03", "h04", "h05"]
    app = DLApplication(spec, cluster, ps_host=ps_host, worker_hosts=workers)
    return sim, cluster, app


def test_spec_shard_sizes():
    spec = JobSpec("j", MODEL, n_workers=3, target_global_steps=30, n_ps=4)
    assert spec.shard_bytes == -(-MODEL.update_bytes // 4)  # ceil
    assert spec.ps_update_compute_per_shard == pytest.approx(
        MODEL.ps_update_compute / 4
    )


def test_spec_rejects_zero_ps():
    with pytest.raises(Exception):
        JobSpec("j", MODEL, n_workers=3, target_global_steps=30, n_ps=0)


def test_single_host_string_expands_to_all_shards():
    sim, cluster, app = make(n_ps=3, ps_host="h00")
    assert len(app.ps_endpoints) == 3
    assert all(ep.host_id == "h00" for ep in app.ps_endpoints)
    assert len(set(app.ps_ports)) == 3  # distinct ports


def test_shards_on_distinct_hosts():
    sim, cluster, app = make(n_ps=3, ps_host=["h00", "h01", "h02"])
    assert [ep.host_id for ep in app.ps_endpoints] == ["h00", "h01", "h02"]


def test_host_count_mismatch_rejected():
    with pytest.raises(PlacementError):
        make(n_ps=3, ps_host=["h00", "h01"])


def test_ps_worker_overlap_rejected():
    with pytest.raises(PlacementError):
        make(n_ps=2, ps_host=["h00", "h03"])  # h03 is a worker host


def test_sharded_sync_job_completes():
    sim, cluster, app = make(n_ps=3, ps_host="h00", steps=30)
    app.launch()
    sim.run()
    m = app.metrics
    assert m.finished
    assert m.global_steps == 30
    assert m.iterations_done == 10


def test_sharded_job_moves_same_total_bytes():
    """n_ps shards of ~1/n_ps size each: total wire bytes are preserved."""
    totals = {}
    for n_ps in (1, 3):
        sim, cluster, app = make(n_ps=n_ps, ps_host="h00", steps=30)
        app.launch()
        sim.run()
        totals[n_ps] = cluster.host("h00").nic.bytes_tx
    # ceil() rounding makes the sharded total at most n_ps bytes bigger
    # per message.
    assert totals[3] >= totals[1]
    assert totals[3] - totals[1] <= 3 * 3 * 10 * 4  # shards x workers x iters x pad


def test_sharded_barrier_waits_recorded():
    sim, cluster, app = make(n_ps=2, ps_host="h00", steps=30)
    app.launch()
    sim.run()
    assert app.metrics.barriers.complete_barriers() == list(range(9))


def test_sharded_async_job_completes():
    sim, cluster, app = make(n_ps=2, ps_host="h00", sync=False, steps=30)
    app.launch()
    sim.run()
    assert app.metrics.finished
    assert app.metrics.global_steps == 30


def test_done_fires_after_all_shards():
    sim, cluster, app = make(n_ps=3, ps_host="h00", steps=30)
    app.launch()
    fired = []

    def watch():
        m = yield app.done
        fired.append((sim.now, m.finished))

    sim.spawn(watch(), name="watch")
    sim.run()
    assert fired and fired[0][1]


def test_ports_released_for_all_shards():
    sim, cluster, app = make(n_ps=3, ps_host="h00", steps=30)
    app.launch()
    sim.run()
    for ep in app.ps_endpoints:
        ep.host.transport.listen(ep.port, lambda m: None)  # rebindable
    assert cluster.host("h00").n_tasks == 0


def test_tensorlights_bands_all_shard_ports():
    from repro.tensorlights import TensorLights, TLMode

    sim = Simulator(seed=2)
    cluster = Cluster(sim, n_hosts=6, link=Link(rate=1.25e9),
                      segment_bytes=64 * 1024)
    tl = TensorLights(cluster, mode=TLMode.ONE)
    workers = ["h03", "h04", "h05"]
    apps = []
    for j in range(2):
        spec = JobSpec(f"j{j}", MODEL, n_workers=3, target_global_steps=30,
                       n_ps=2)
        app = DLApplication(spec, cluster, ps_host="h00", worker_hosts=workers)
        tl.attach(app)
        apps.append(app)
    # both shard ports of each job must map to the job's single band
    state_tc = tl._hosts["h00"].tc
    for app in apps:
        bands = {state_tc.band_of_port(p) for p in app.ps_ports}
        assert len(bands) == 1 and None not in bands
    assert state_tc.band_of_port(apps[0].ps_ports[0]) != state_tc.band_of_port(
        apps[1].ps_ports[0]
    )
