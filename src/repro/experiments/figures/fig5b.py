"""Figure 5b: normalized JCT vs local batch size at placement #1.

The local batch size is the contention knob: a smaller batch means less
computation per local step, hence more frequent model/gradient updates and
heavier traffic contention.  Paper: TLs-One's improvement grows to 31 %
(TLs-RR 17 %) at the smallest batch, and contention fades at large batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.normalize import normalized_jct
from repro.experiments.campaign import Campaign
from repro.experiments.config import ExperimentConfig, Policy
from repro.experiments.figures.common import (
    ALL_POLICIES,
    base_config,
    policy_scenarios,
    submit,
)
from repro.experiments.report import TextTable
from repro.experiments.runtime import ExperimentResult

DEFAULT_BATCH_SIZES = (1, 2, 4, 8, 16)


@dataclass
class Fig5bResult:
    #: batch size -> policy -> result
    results: Dict[int, Dict[Policy, ExperimentResult]]

    def mean_normalized(self, batch: int, policy: Policy) -> float:
        per_batch = self.results[batch]
        norm = normalized_jct(per_batch[policy].jcts, per_batch[Policy.FIFO].jcts)
        return float(np.mean(list(norm.values())))

    def best_improvement(self, policy: Policy) -> float:
        return max(1.0 - self.mean_normalized(b, policy) for b in self.results)

    def render(self) -> str:
        table = TextTable(
            ["Local batch", "FIFO avg JCT (s)", "TLs-One norm", "TLs-RR norm"],
            title=(
                "Figure 5b: normalized JCT vs local batch size "
                "(placement #1; smaller batch = heavier contention)"
            ),
        )
        for batch in sorted(self.results):
            table.add_row(
                batch,
                self.results[batch][Policy.FIFO].avg_jct,
                self.mean_normalized(batch, Policy.TLS_ONE),
                self.mean_normalized(batch, Policy.TLS_RR),
            )
        return (
            table.render()
            + f"\n\nBest improvement: TLs-One "
            f"{self.best_improvement(Policy.TLS_ONE) * 100:.0f}% [paper: 31%], "
            f"TLs-RR {self.best_improvement(Policy.TLS_RR) * 100:.0f}% [paper: 17%]"
        )


def generate(
    base: Optional[ExperimentConfig] = None,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    campaign: Optional[Campaign] = None,
    **overrides,
) -> Fig5bResult:
    """Sweep the local batch size at placement #1 under all policies."""
    cfg = base_config(base, **overrides).replace(placement_index=1)
    grid = [
        scenario.with_tags(batch=batch)
        for batch in batch_sizes
        for scenario in policy_scenarios(
            cfg.replace(local_batch_size=batch), ALL_POLICIES
        )
    ]
    flat = submit(grid, campaign)
    results: Dict[int, Dict[Policy, ExperimentResult]] = {}
    for scenario, result in zip(grid, flat):
        batch = int(scenario.tag("batch"))
        results.setdefault(batch, {})[Policy(scenario.tag("policy"))] = result
    return Fig5bResult(results=results)
