"""Figure 4: scheduling of model-update traffic from two colocated PSes.

The paper's conceptual figure: under FIFO both jobs' fan-out bursts
interleave and both finish at the tail of the contention window; under
TLs-One the prioritized job's burst completes first and the other yields;
under TLs-RR the winner alternates with the rotation interval.

We reproduce it as a measured schedule trace: two jobs whose PSes share a
host broadcast simultaneously; we record when each worker's model update
completes and summarize each job's burst as a [first, last] delivery span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.placement import PlacementSpec
from repro.experiments.config import ExperimentConfig, Policy
from repro.experiments.figures.common import base_config
from repro.experiments.report import TextTable
from repro.experiments.runtime import materialize
from repro.experiments.scenario import Scenario


@dataclass
class BurstSpan:
    """Delivery span of one job's fan-out burst in one iteration."""

    job_id: str
    iteration: int
    first: float
    last: float

    @property
    def width(self) -> float:
        return self.last - self.first


@dataclass
class Fig4Result:
    spans: Dict[Policy, List[BurstSpan]]
    observe_iteration: int

    def overlap(self, policy: Policy) -> float:
        """Temporal overlap (seconds) of the two jobs' bursts.

        FIFO interleaves, so the overlap is nearly the whole window;
        TLs-One serializes, so the overlap is ~0.
        """
        spans = self.spans[policy]
        if len(spans) < 2:
            return 0.0
        a, b = spans[0], spans[1]
        return max(0.0, min(a.last, b.last) - max(a.first, b.first))

    def render(self) -> str:
        from repro.analysis.timeline import Span, render_timeline

        table = TextTable(
            ["Policy", "Job", "Burst start", "Burst end", "Width", "Overlap"],
            title=(
                "Figure 4: model-update schedule of two colocated PSes "
                f"(iteration {self.observe_iteration}; times relative to "
                "iteration start)"
            ),
        )
        timeline_spans = []
        for policy, spans in self.spans.items():
            t0 = min(s.first for s in spans) if spans else 0.0
            for s in spans:
                table.add_row(
                    policy.value, s.job_id, s.first - t0, s.last - t0,
                    s.width, self.overlap(policy),
                )
                timeline_spans.append(
                    Span(f"{policy.value}/{s.job_id}", s.first - t0, s.last - t0)
                )
        chart = render_timeline(timeline_spans, width=60)
        return table.render() + "\n\n" + chart


def _observe(policy: Policy, cfg: ExperimentConfig, observe_iteration: int):
    # Two jobs, both PSes on the first host, launched simultaneously —
    # the exact collision Figure 4 illustrates — on a fluid network
    # (no switch losses), traced at message granularity.
    scenario = Scenario(
        config=cfg.replace(
            n_jobs=2, launch_stagger=0.0, policy=policy,
            switch_buffer_bytes=None, rto=0.2,
        ),
        placement=PlacementSpec((2,)),
        tags=(("figure", "4"), ("policy", policy.value)),
    )
    rt = materialize(scenario, trace_kinds={"msg_recv"})
    sim, apps = rt.sim, rt.apps
    rt.run()

    spans = []
    for app in apps:
        times = [
            rec.time
            for rec in sim.trace.of_kind("msg_recv")
            if rec.fields.get("msg_kind") == "model_update"
            and rec.fields.get("job") == app.spec.job_id
            and rec.fields.get("iteration") == observe_iteration
        ]
        if times:
            spans.append(
                BurstSpan(app.spec.job_id, observe_iteration,
                          min(times), max(times))
            )
    return spans


def generate(
    base: Optional[ExperimentConfig] = None,
    observe_iteration: Optional[int] = None,
    **overrides,
) -> Fig4Result:
    """Trace the two-PS collision under each policy."""
    cfg = base_config(base, **overrides)
    if observe_iteration is None:
        # Iteration 0: both jobs launch simultaneously, so their bursts are
        # guaranteed to collide — the exact scenario Figure 4 illustrates.
        observe_iteration = 0
    spans = {
        policy: _observe(policy, cfg, observe_iteration)
        for policy in (Policy.FIFO, Policy.TLS_ONE, Policy.TLS_RR)
    }
    return Fig4Result(spans=spans, observe_iteration=observe_iteration)
