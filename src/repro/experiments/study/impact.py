"""Component-impact ranking: what actually matters, with bootstrap CIs.

:func:`run_study` measures each declared component's contribution to the
TensorLights result by knockout: the system configuration (TLs-RR on the
paper's contended placement) runs next to one variant per component with
that component set to its ``ablated`` value, plus a plain-FIFO reference
— all replicated over a seed sweep and submitted as ONE
:class:`~repro.experiments.campaign.Campaign` (so ``--parallel`` and the
result cache span the entire study).  Per-component impact is the paired
bootstrap ratio ``knockout JCT / default JCT`` over seeds
(:func:`repro.analysis.ci.bootstrap_ratio_ci`), ranked by distance
from 1.0; fairness impact is the same ratio over the per-job JCT spread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.ci import ConfidenceInterval, bootstrap_ratio_ci
from repro.errors import ConfigError
from repro.experiments.campaign import Campaign
from repro.experiments.config import ExperimentConfig, Policy
from repro.experiments.report import TextTable
from repro.experiments.runtime import ExperimentResult
from repro.experiments.scenario import Scenario
from repro.experiments.study.components import (
    Component,
    all_components,
    get_component,
)


def _jct_spread(result: ExperimentResult) -> float:
    """Fairness proxy: std of per-job JCTs within one run."""
    return float(np.std(list(result.jcts.values())))


def _format_ci(ci: Optional[ConfidenceInterval]) -> str:
    """One table cell: ``estimate [low, high]`` (or ``-``)."""
    if ci is None:
        return "-"
    return f"{ci.estimate:.3f} [{ci.low:.3f}, {ci.high:.3f}]"


@dataclass(frozen=True)
class ComponentImpact:
    """One component's measured knockout impact.

    ``jct_vs_default`` is the paired bootstrap CI of
    ``knockout JCT / TLs-default JCT`` over the seed sweep — above 1.0
    the knockout *hurts* (the component earns its place), below 1.0 the
    knockout helps.  ``fairness_vs_default`` is the same ratio over the
    per-job JCT spread (``None`` when the default spread is ~0 and the
    ratio is undefined).
    """

    component: str
    description: str
    ablated: Any
    avg_jct: float
    jct_vs_default: ConfidenceInterval
    fairness_vs_default: Optional[ConfidenceInterval]
    tl_only: bool = False

    @property
    def magnitude(self) -> float:
        """Distance of the JCT ratio from 1.0 (the ranking key)."""
        return abs(self.jct_vs_default.estimate - 1.0)


@dataclass
class ImpactReport:
    """The ranked outcome of one component-impact study.

    ``render()`` and ``to_csv()`` share one :class:`TextTable` path, so
    the printed table and the exported artifact can never disagree on
    headers or rounding.
    """

    config: ExperimentConfig
    seeds: Tuple[int, ...]
    fifo_jct: float
    default_jct: float
    default_vs_fifo: ConfidenceInterval
    impacts: List[ComponentImpact] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    wall_seconds: float = 0.0

    def ranked(self) -> List[ComponentImpact]:
        """Impacts sorted by JCT-ratio magnitude, largest first."""
        return sorted(self.impacts, key=lambda i: i.magnitude, reverse=True)

    def _table(self) -> TextTable:
        table = TextTable(
            ["Component", "Knockout", "Avg JCT (s)", "JCT vs TLs (95% CI)",
             "Spread vs TLs (95% CI)"],
            title=(
                f"Component impact, ranked (TLs-RR knockouts, "
                f"placement #{self.config.placement_index}, "
                f"seeds {list(self.seeds)})"
            ),
        )
        table.add_row("(none: TLs default)", "-", self.default_jct,
                      _format_ci(None), _format_ci(None))
        for impact in self.ranked():
            name = impact.component + (" *" if impact.tl_only else "")
            table.add_row(
                name,
                impact.ablated,
                impact.avg_jct,
                _format_ci(impact.jct_vs_default),
                _format_ci(impact.fairness_vs_default),
            )
        return table

    def render(self) -> str:
        """The ranked impact table plus the FIFO/TLs reference line."""
        lines = [
            self._table().render(),
            "",
            f"reference: FIFO {self.fifo_jct:.4g} s, TLs default "
            f"{self.default_jct:.4g} s "
            f"(TLs/FIFO {_format_ci(self.default_vs_fifo)})",
            "* = mechanism only exists under a TensorLights controller",
        ]
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The same table as CSV (identical headers and formatting)."""
        return self._table().to_csv()


def run_study(
    base: Optional[ExperimentConfig] = None,
    components: Optional[Sequence[Union[str, Component]]] = None,
    seeds: Optional[Sequence[int]] = None,
    campaign: Optional[Campaign] = None,
    confidence: float = 0.95,
    **overrides,
) -> ImpactReport:
    """Run the whole component-impact study as one campaign submission.

    Args:
        base: starting configuration (default: ``ExperimentConfig()``;
            the study pins ``placement_index=1``, the paper's contended
            placement, unless ``overrides`` say otherwise).
        components: which components to knock out — names or
            :class:`Component` objects; default: every registered one.
        seeds: the seed sweep (needs >= 2 for bootstrap CIs; default:
            three consecutive seeds from the base config's).
        campaign: the campaign to submit through (parallel executor /
            result cache); default: serial, uncached.
        confidence: CI level for the bootstrap ratios.
    """
    cfg = base if base is not None else ExperimentConfig()
    if "placement_index" not in overrides:
        overrides = dict(overrides, placement_index=1)
    cfg = cfg.replace(**overrides)

    selected: List[Component] = [
        get_component(c) if isinstance(c, str) else c
        for c in (components if components is not None
                  else all_components().values())
    ]
    if not selected:
        raise ConfigError("impact study needs at least one component")
    seed_sweep: Tuple[int, ...] = (
        tuple(seeds) if seeds is not None
        else (cfg.seed, cfg.seed + 1, cfg.seed + 2)
    )
    if len(seed_sweep) < 2:
        raise ConfigError(
            "impact study needs >= 2 seeds for bootstrap CIs, got "
            f"{list(seed_sweep)}"
        )

    scenarios: List[Scenario] = []
    for seed in seed_sweep:
        seeded = cfg.replace(seed=seed)
        system = seeded.replace(policy=Policy.TLS_RR)

        def tagged(scenario: Scenario, variant: str) -> Scenario:
            return scenario.with_tags(
                study="impact", variant=variant, seed=seed
            )

        scenarios.append(tagged(
            Scenario(config=seeded.replace(policy=Policy.FIFO)), "fifo"
        ))
        scenarios.append(tagged(Scenario(config=system), "tls-default"))
        for component in selected:
            scenarios.append(tagged(
                component.apply(Scenario(config=system), component.ablated),
                component.name,
            ))

    camp = campaign if campaign is not None else Campaign()
    outcome = camp.run(scenarios)
    by_variant: Dict[str, List[ExperimentResult]] = outcome.by_tag("variant")

    fifo_jcts = [r.avg_jct for r in by_variant["fifo"]]
    default_jcts = [r.avg_jct for r in by_variant["tls-default"]]
    default_spreads = [_jct_spread(r) for r in by_variant["tls-default"]]
    spread_defined = all(s > 0 for s in default_spreads)

    impacts: List[ComponentImpact] = []
    for component in selected:
        results = by_variant[component.name]
        knock_jcts = [r.avg_jct for r in results]
        fairness = None
        if spread_defined:
            fairness = bootstrap_ratio_ci(
                [_jct_spread(r) for r in results], default_spreads,
                confidence=confidence,
            )
        impacts.append(ComponentImpact(
            component=component.name,
            description=component.description,
            ablated=component.ablated,
            avg_jct=float(np.mean(knock_jcts)),
            jct_vs_default=bootstrap_ratio_ci(
                knock_jcts, default_jcts, confidence=confidence
            ),
            fairness_vs_default=fairness,
            tl_only=component.tl_only,
        ))

    return ImpactReport(
        config=cfg,
        seeds=seed_sweep,
        fifo_jct=float(np.mean(fifo_jcts)),
        default_jct=float(np.mean(default_jcts)),
        default_vs_fifo=bootstrap_ratio_ci(
            default_jcts, fifo_jcts, confidence=confidence
        ),
        impacts=impacts,
        cache_hits=outcome.cache_hits,
        executed=outcome.executed,
        wall_seconds=outcome.wall_seconds,
    )
