"""Robustness: does the TensorLights result survive hostile conditions?

A12 — noisy neighbors: background CPU load on worker hosts plus non-DL
bulk traffic crossing the contended PS host's NIC.  TensorLights cannot
schedule the interference (it is unclassified traffic / other tenants),
but its improvement on the DL jobs should survive.

A13 — lossy fabric: a netem egress qdisc at every *worker* host adds
random loss and delay jitter (the PS host keeps its HTB — the paper only
configures contended hosts).  The improvement should degrade gracefully,
not invert.
"""

import numpy as np
from conftest import run_once

from repro.cluster import Cluster, ClusterScheduler
from repro.cluster.antagonist import CpuAntagonist, NetworkAntagonist
from repro.dl import DLApplication, JobSpec
from repro.dl.model_zoo import get_model
from repro.experiments.config import ExperimentConfig, Policy
from repro.experiments.report import TextTable
from repro.net.link import Link
from repro.net.qdisc import NetemQdisc
from repro.sim import Simulator
from repro.tensorlights import TensorLights, TLMode


def _run(cfg, policy, noisy=False, lossy=False):
    sim = Simulator(seed=cfg.seed)
    cluster = Cluster(
        sim, n_hosts=cfg.n_hosts, cores_per_host=cfg.cores_per_host,
        link=Link(rate=cfg.link_rate), segment_bytes=cfg.segment_bytes,
        window_segments=cfg.window_segments, window_jitter=cfg.window_jitter,
        switch_buffer_bytes=cfg.switch_buffer_bytes, rto=cfg.rto,
    )
    scheduler = ClusterScheduler(cluster.host_ids)
    ps_hosts = scheduler.ps_hosts_for_placement(cfg.placement())
    model = get_model(cfg.model)
    controller = None
    if policy == Policy.TLS_ONE:
        controller = TensorLights(cluster, mode=TLMode.ONE,
                                  max_bands=cfg.max_bands)
    apps = []
    for j in range(cfg.n_jobs):
        spec = JobSpec(
            job_id=f"job{j:02d}", model=model, n_workers=cfg.n_workers,
            local_batch_size=cfg.local_batch_size,
            target_global_steps=cfg.target_global_steps,
            arrival_time=j * cfg.launch_stagger,
            compute_jitter_sigma=cfg.compute_jitter_sigma,
        )
        workers = scheduler.worker_hosts(ps_hosts[j], cfg.n_workers)
        app = DLApplication(spec, cluster, ps_hosts[j], workers)
        if controller is not None:
            controller.attach(app)
        apps.append(app)

    stoppers = []
    if noisy:
        # 2 cores of background load on a third of the worker hosts, plus
        # bulk traffic crossing the contended PS host's NIC.
        for hid in cluster.host_ids[1::3]:
            ant = CpuAntagonist(cluster.host(hid), intensity=2.0)
            ant.start()
            stoppers.append(ant)
        bulk = NetworkAntagonist(cluster, ps_hosts[0],
                                 cluster.host_ids[-1], rate=cfg.link_rate / 10)
        bulk.start()
        stoppers.append(bulk)
    if lossy:
        for hid in cluster.host_ids:
            if hid == ps_hosts[0]:
                continue  # the paper only reconfigures contended hosts
            cluster.host(hid).nic.set_qdisc(
                NetemQdisc(delay=2e-4, jitter=5e-5, loss=0.0, seed=1)
            )

    from repro.sim.primitives import AllOf

    def stop_all():
        yield AllOf([a.done for a in apps])
        for s in stoppers:
            s.stop()

    sim.spawn(stop_all(), name="stop-antagonists")
    for app in apps:
        app.launch()
    sim.run()
    return float(np.mean([a.metrics.jct for a in apps]))


def test_a12_noisy_neighbors(benchmark, bench_config):
    cfg = bench_config.replace(iterations=max(10, bench_config.iterations // 2),
                               placement_index=1)

    def run_all():
        return {
            ("clean", "fifo"): _run(cfg, Policy.FIFO),
            ("clean", "tls-one"): _run(cfg, Policy.TLS_ONE),
            ("noisy", "fifo"): _run(cfg, Policy.FIFO, noisy=True),
            ("noisy", "tls-one"): _run(cfg, Policy.TLS_ONE, noisy=True),
        }

    jcts = run_once(benchmark, run_all)
    table = TextTable(["Environment", "FIFO JCT (s)", "TLs-One JCT (s)", "Norm"],
                      title="A12: noisy neighbors (placement #1)")
    for env in ("clean", "noisy"):
        f, t = jcts[(env, "fifo")], jcts[(env, "tls-one")]
        table.add_row(env, f, t, t / f)
    print()
    print(table.render())
    assert jcts[("noisy", "fifo")] > jcts[("clean", "fifo")]  # noise hurts
    # TensorLights still wins under interference
    assert jcts[("noisy", "tls-one")] < 0.95 * jcts[("noisy", "fifo")]


def test_a13_jittery_fabric(benchmark, bench_config):
    cfg = bench_config.replace(iterations=max(10, bench_config.iterations // 2),
                               placement_index=1)

    def run_all():
        return {
            ("clean", "fifo"): _run(cfg, Policy.FIFO),
            ("clean", "tls-one"): _run(cfg, Policy.TLS_ONE),
            ("jitter", "fifo"): _run(cfg, Policy.FIFO, lossy=True),
            ("jitter", "tls-one"): _run(cfg, Policy.TLS_ONE, lossy=True),
        }

    jcts = run_once(benchmark, run_all)
    table = TextTable(["Environment", "FIFO JCT (s)", "TLs-One JCT (s)", "Norm"],
                      title="A13: netem delay jitter at worker hosts (placement #1)")
    for env in ("clean", "jitter"):
        f, t = jcts[(env, "fifo")], jcts[(env, "tls-one")]
        table.add_row(env, f, t, t / f)
    print()
    print(table.render())
    # degradation is graceful: TLs still at least matches FIFO
    assert jcts[("jitter", "tls-one")] < 1.02 * jcts[("jitter", "fifo")]
