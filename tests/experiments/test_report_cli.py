"""Tests for the text report renderer and the CLI."""

import pytest

from repro.cli import main
from repro.experiments.report import TextTable, render_cdf, render_scatter_summary


# ---------------------------------------------------------------- TextTable


def test_table_alignment_and_title():
    t = TextTable(["a", "long header"], title="T")
    t.add_row("x", 1)
    t.add_row("yyyy", 2.5)
    text = t.render()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long header" in lines[1]
    assert len({len(l) for l in lines[2:]}) == 1  # aligned rows


def test_table_float_formatting():
    t = TextTable(["v"])
    t.add_row(0.123456789)
    assert "0.1235" in t.render()


def test_table_row_width_mismatch():
    t = TextTable(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_table_empty_renders_headers():
    t = TextTable(["a"])
    assert "a" in t.render()


def test_render_cdf_deciles():
    text = render_cdf([1.0, 2.0, 3.0, 4.0], "label")
    assert "label" in text and "p50=" in text and "n=4" in text


def test_render_scatter_summary():
    text = render_scatter_summary([1.0, 2.0, 3.0], "jcts")
    assert "mean=" in text and "n=3" in text


# ---------------------------------------------------------------- CLI


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "5, 16" in out


def test_cli_run_tiny(capsys):
    code = main([
        "run", "--jobs", "3", "--workers", "3", "--iterations", "3",
        "--placement", "1", "--policy", "tls-one", "--seed", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "avg JCT" in out
    assert "tc qdisc replace" in out


def test_cli_fig2_tiny(capsys):
    code = main([
        "fig2", "--jobs", "3", "--workers", "3", "--iterations", "3",
        "--placements", "1", "8",
    ])
    assert code == 0
    assert "Figure 2" in capsys.readouterr().out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_rejects_bad_policy():
    with pytest.raises(SystemExit):
        main(["run", "--policy", "nope"])


def test_cli_export_json(capsys):
    code = main([
        "run", "--jobs", "3", "--workers", "3", "--iterations", "3",
        "--export", "json",
    ])
    assert code == 0
    import json

    data = json.loads(capsys.readouterr().out)
    assert len(data) == 1
    assert len(data[0]["jobs"]) == 3


def test_cli_export_csv_to_file(tmp_path, capsys):
    out = tmp_path / "res.csv"
    code = main([
        "run", "--jobs", "3", "--workers", "3", "--iterations", "3",
        "--export", "csv", "--output", str(out),
    ])
    assert code == 0
    text = out.read_text()
    assert text.splitlines()[0].startswith("policy,")
    assert len(text.splitlines()) == 4  # header + 3 jobs


TINY_ARGS = ["--jobs", "3", "--workers", "3", "--iterations", "3"]


def test_cli_fig1(capsys):
    assert main(["fig1", *TINY_ARGS]) == 0
    assert "workflow trace" in capsys.readouterr().out


def test_cli_fig3(capsys):
    assert main(["fig3", *TINY_ARGS]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out and "3.71x" in out


def test_cli_fig4(capsys):
    assert main(["fig4", *TINY_ARGS]) == 0
    assert "Figure 4" in capsys.readouterr().out


def test_cli_fig5a(capsys):
    assert main(["fig5a", *TINY_ARGS, "--placements", "1"]) == 0
    assert "Figure 5a" in capsys.readouterr().out


def test_cli_fig5b(capsys):
    assert main(["fig5b", *TINY_ARGS, "--batches", "2"]) == 0
    assert "Figure 5b" in capsys.readouterr().out


def test_cli_fig6(capsys):
    assert main(["fig6", *TINY_ARGS]) == 0
    assert "Figure 6" in capsys.readouterr().out


def test_cli_fct(capsys):
    assert main(["fct", *TINY_ARGS]) == 0
    assert "flow completion times" in capsys.readouterr().out


def test_cli_table2(capsys):
    assert main(["table2", *TINY_ARGS, "--sample-interval", "0.05"]) == 0
    assert "Table II" in capsys.readouterr().out


def test_cli_utilization(tmp_path, capsys):
    out = tmp_path / "metrics.jsonl"
    code = main([
        "utilization", *TINY_ARGS, "--sample-interval", "0.05", "--quick",
        "--export-metrics", str(out),
    ])
    # exit code is the direction check; at tiny scale it may go either way
    assert code in (0, 1)
    text = capsys.readouterr().out
    assert "Result #3" in text
    assert "direction" in text
    import json

    lines = out.read_text().splitlines()
    assert lines
    scenarios = {json.loads(line)["scenario"] for line in lines}
    # one snapshot per policy plus the campaign-level line
    assert "campaign" in scenarios
    assert len(scenarios) == 4


def test_cli_run_drr_policy(capsys):
    assert main(["run", *TINY_ARGS, "--policy", "drr"]) == 0
    assert "avg JCT" in capsys.readouterr().out
