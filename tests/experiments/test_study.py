"""Tests for the declarative study engine: registry, grids, impact."""

import pytest

from repro.errors import ConfigError
from repro.experiments import Campaign, ExperimentConfig, Policy
from repro.experiments.study import (
    Axis,
    Component,
    StudySpec,
    all_components,
    get_component,
    run_study,
)
from repro.experiments.study.spec import merge_hooks

TINY = ExperimentConfig.tiny()


# -- component registry -------------------------------------------------------


def test_registry_has_the_paper_mechanisms():
    names = set(all_components())
    assert {"bands", "rotation", "window_jitter", "slow_start",
            "htb_borrowing", "adaptive", "rate_control"} <= names


def test_get_component_unknown_name():
    with pytest.raises(ConfigError, match="unknown component"):
        get_component("flux_capacitor")


def test_component_must_drive_exactly_one_target():
    with pytest.raises(ConfigError, match="exactly one"):
        Component(name="x", description="d", field="max_bands",
                  hook="slow_start", hook_param="enabled",
                  values=(1, 2), default=1, ablated=2)
    with pytest.raises(ConfigError, match="exactly one"):
        Component(name="x", description="d", values=(1, 2),
                  default=1, ablated=2)


def test_component_ablated_must_differ_from_default():
    with pytest.raises(ConfigError, match="must differ"):
        Component(name="x", description="d", field="max_bands",
                  values=(1, 2), default=1, ablated=1)


def test_field_component_apply_rewrites_config():
    from repro.experiments.scenario import Scenario

    scn = get_component("bands").apply(Scenario(config=TINY), 3)
    assert scn.config.max_bands == 3
    assert scn.hooks == ()


def test_hook_component_apply_at_default_is_identity():
    from repro.experiments.scenario import Scenario

    base = Scenario(config=TINY)
    slow = get_component("slow_start")
    assert slow.apply(base, slow.default) is base
    hooked = slow.apply(base, True)
    assert hooked.hooks == (("slow_start", (("enabled", True),)),)


def test_rate_control_component_forces_its_config_overrides():
    from repro.experiments.scenario import Scenario

    rc = get_component("rate_control")
    scn = rc.apply(Scenario(config=TINY.replace(policy=Policy.TLS_RR)), 0.8)
    assert scn.config.policy == Policy.FIFO
    assert scn.config.switch_buffer_bytes is None
    assert scn.hook_params("rate_control") == {"accuracy": 0.8}


# -- grid expansion -----------------------------------------------------------


def _axes():
    return (get_component("bands").axis((1, 6)),
            Axis(name="policy", values=(Policy.FIFO, Policy.TLS_ONE)))


def test_grid_expansion_is_deterministic():
    spec = StudySpec(name="s", base=TINY, axes=_axes())
    assert spec.keys() == spec.keys()
    assert spec.size() == 4


def test_same_spec_same_keys_across_instances():
    a = StudySpec(name="s", base=TINY, axes=_axes())
    b = StudySpec(name="s", base=TINY, axes=_axes())
    assert a.keys() == b.keys()


def test_axis_order_permutes_list_but_not_key_set():
    fwd = StudySpec(name="s", base=TINY, axes=_axes())
    rev = StudySpec(name="s", base=TINY, axes=tuple(reversed(_axes())))
    assert fwd.keys() != rev.keys()  # order differs...
    assert set(fwd.keys()) == set(rev.keys())  # ...content does not


def test_hook_axis_order_independence():
    # Both components drive the tl_controller hook; merged+sorted params
    # must make the content keys independent of axis declaration order.
    axes = (get_component("htb_borrowing").axis(),
            get_component("adaptive").axis())
    fwd = StudySpec(name="s", base=TINY, axes=axes)
    rev = StudySpec(name="s", base=TINY, axes=tuple(reversed(axes)))
    assert set(fwd.keys()) == set(rev.keys())
    # The non-default/non-default corner carries one merged hook.
    corner = [p for p in fwd.expand()
              if p.override_dict() == {"htb_borrowing": False,
                                       "adaptive": "adaptive"}]
    [point] = corner
    assert point.scenario.hook_params("tl_controller") == {
        "variant": "adaptive", "work_conserving": False,
    }


def test_oat_design_size_and_baseline():
    spec = StudySpec(
        name="s",
        base=TINY,
        axes=(get_component("bands").axis((1, 6)),
              get_component("window_jitter").axis()),
        design="oat",
        baseline=TINY.replace(policy=Policy.FIFO),
    )
    # per seed: 1 baseline + 1 all-defaults + 1 (bands: 6 is default)
    #           + 2 (window_jitter: 0.5 is default)
    points = spec.expand()
    assert len(points) == 5
    assert points[0].is_baseline
    assert ("variant", "baseline") in points[0].scenario.tags


def test_seed_sweep_replicates_and_tags():
    spec = StudySpec(name="s", base=TINY, axes=_axes(), seeds=(7, 8))
    points = spec.expand()
    assert len(points) == 8
    seeds = {dict(p.scenario.tags)["seed"] for p in points}
    assert seeds == {"7", "8"}
    assert {p.scenario.config.seed for p in points} == {7, 8}


def test_spec_validation_errors():
    with pytest.raises(ConfigError, match="at least one axis"):
        StudySpec(name="s", base=TINY, axes=())
    with pytest.raises(ConfigError, match="design"):
        StudySpec(name="s", base=TINY, axes=_axes(), design="fancy")
    with pytest.raises(ConfigError, match="duplicate"):
        StudySpec(name="s", base=TINY,
                  axes=(Axis(name="policy", values=(Policy.FIFO,)),
                        Axis(name="policy", values=(Policy.TLS_ONE,))))
    with pytest.raises(ConfigError, match="unknown config field"):
        StudySpec(name="s", base=TINY,
                  axes=(Axis(name="not_a_field", values=(1,)),))
    with pytest.raises(ConfigError, match="has no values"):
        Axis(name="policy", values=())


def test_merge_hooks_unions_and_sorts():
    merged = merge_hooks((
        ("b_hook", (("x", 1),)),
        ("a_hook", (("z", 3), ("a", 2))),
        ("b_hook", (("y", 2), ("x", 1))),
    ))
    assert merged == (
        ("a_hook", (("a", 2), ("z", 3))),
        ("b_hook", (("x", 1), ("y", 2))),
    )


def test_merge_hooks_conflict_raises():
    with pytest.raises(ConfigError, match="conflicting"):
        merge_hooks((("h", (("p", 1),)), ("h", (("p", 2),))))


# -- the impact study ---------------------------------------------------------


def test_run_study_needs_two_seeds():
    with pytest.raises(ConfigError, match=">= 2 seeds"):
        run_study(TINY, components=("bands",), seeds=(42,))


def test_run_study_needs_a_component():
    with pytest.raises(ConfigError, match="at least one component"):
        run_study(TINY, components=(), seeds=(42, 43))


def test_run_study_ranked_impacts_and_tables():
    report = run_study(
        TINY,
        components=("bands", "slow_start"),
        seeds=(42, 43),
        campaign=Campaign(),
    )
    assert {i.component for i in report.impacts} == {"bands", "slow_start"}
    ranked = report.ranked()
    assert ranked == sorted(ranked, key=lambda i: i.magnitude, reverse=True)
    for impact in report.impacts:
        ci = impact.jct_vs_default
        assert ci.low <= ci.estimate <= ci.high
    text = report.render()
    assert "Component impact, ranked" in text
    assert "bands *" in text  # tl_only marker
    # One shared table path: the CSV carries the same header and rows.
    csv_lines = report.to_csv().splitlines()
    assert csv_lines[0].startswith("Component,Knockout,Avg JCT")
    assert len(csv_lines) == 1 + 1 + len(report.impacts)


def test_run_study_is_one_campaign_submission():
    events = []
    camp = Campaign(progress=lambda e: events.append(e))
    run_study(TINY, components=("bands",), seeds=(42, 43), campaign=camp)
    # 2 seeds x (fifo + tls-default + 1 knockout) = 6 scenarios, one batch.
    assert {e.total for e in events} == {6}
