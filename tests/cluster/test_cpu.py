"""Unit tests for the processor-sharing CPU model."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.cpu import ProcessorSharingCPU
from repro.errors import SimulationError
from repro.sim import Simulator, Timeout


def test_invalid_cores():
    sim = Simulator()
    with pytest.raises(SimulationError):
        ProcessorSharingCPU(sim, cores=0)


def test_negative_demand_rejected():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim)
    with pytest.raises(SimulationError):
        cpu.run(-1.0)


def test_single_job_runs_at_full_rate():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, cores=4)
    done = []

    def proc():
        yield cpu.run(2.0)
        done.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert done == [pytest.approx(2.0)]


def test_zero_demand_completes_immediately():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim)
    done = []

    def proc():
        yield cpu.run(0.0)
        done.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert done == [0.0]


def test_two_jobs_on_one_core_share():
    """Two 1-core-second jobs on 1 core each take 2 s wall."""
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, cores=1)
    done = []

    def proc(name):
        yield cpu.run(1.0)
        done.append((name, sim.now))

    sim.spawn(proc("a"))
    sim.spawn(proc("b"))
    sim.run()
    assert [t for _, t in done] == [pytest.approx(2.0), pytest.approx(2.0)]


def test_jobs_within_core_count_run_at_full_rate():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, cores=4)
    done = []

    def proc():
        yield cpu.run(3.0)
        done.append(sim.now)

    for _ in range(4):
        sim.spawn(proc())
    sim.run()
    assert all(t == pytest.approx(3.0) for t in done)


def test_unequal_demands_finish_in_order():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, cores=1)
    done = []

    def proc(name, demand):
        yield cpu.run(demand)
        done.append((name, sim.now))

    sim.spawn(proc("short", 1.0))
    sim.spawn(proc("long", 2.0))
    sim.run()
    # PS: both at rate 1/2 until short finishes at t=2; long then runs
    # alone with 1 core-second left -> t=3.
    assert done == [("short", pytest.approx(2.0)), ("long", pytest.approx(3.0))]


def test_late_arrival_slows_running_job():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, cores=1)
    done = []

    def first():
        yield cpu.run(2.0)
        done.append(("first", sim.now))

    def second():
        yield Timeout(1.0)
        yield cpu.run(0.5)
        done.append(("second", sim.now))

    sim.spawn(first())
    sim.spawn(second())
    sim.run()
    # first runs alone [0,1) doing 1.0; shares [1,2) doing 0.5 each; second
    # finishes at t=2.0 (0.5 done), first has 0.5 left alone -> t=2.5.
    assert done == [("second", pytest.approx(2.0)), ("first", pytest.approx(2.5))]


def test_busy_core_time_accounting():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, cores=2)
    for _ in range(2):
        sim.spawn((lambda: (yield cpu.run(1.5)))())
    sim.run()
    assert cpu.utilization_snapshot() == pytest.approx(3.0)


def test_busy_core_time_capped_by_cores():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, cores=1)
    for _ in range(4):
        sim.spawn((lambda: (yield cpu.run(1.0)))())
    sim.run()
    # 4 core-seconds of work on 1 core -> 4 s wall, busy == 4 core-seconds
    assert sim.now == pytest.approx(4.0)
    assert cpu.utilization_snapshot() == pytest.approx(4.0)


def test_rate_per_job():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, cores=2)
    assert cpu.rate_per_job == 0.0
    sim.spawn((lambda: (yield cpu.run(10.0)))())
    sim.run(until=0.1)
    assert cpu.active_jobs == 1
    assert cpu.rate_per_job == 1.0


@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=12),
)
def test_property_total_work_conserved(cores, demands):
    """Makespan == max(total_work / cores, longest_job) bounds hold, and
    busy core-time equals the total submitted work."""
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, cores=cores)
    for d in demands:
        sim.spawn((lambda d=d: (yield cpu.run(d)))())
    sim.run()
    total = sum(demands)
    assert cpu.utilization_snapshot() == pytest.approx(total, rel=1e-6)
    lower = max(total / cores, max(demands))
    assert sim.now >= lower - 1e-6
    assert sim.now <= total + 1e-6  # never slower than fully serial


def test_utilization_snapshot_mid_run_partial_progress():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, cores=1)
    sim.spawn((lambda: (yield cpu.run(4.0)))())
    sim.run(until=1.5)
    assert cpu.utilization_snapshot() == pytest.approx(1.5)
    assert cpu.active_jobs == 1


def test_many_tiny_jobs_complete_in_bounded_steps():
    """Event-count regression guard: n jobs need O(n) completion events."""
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, cores=4)
    n = 300
    for _ in range(n):
        sim.spawn((lambda: (yield cpu.run(0.01)))())
    sim.run()
    # spawn + start + completion bookkeeping stays linear-ish
    assert sim.steps_executed < 20 * n
