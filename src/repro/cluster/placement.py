"""PS placement specifications — Table I of the paper.

For ``M`` concurrent jobs, a placement is written ``m_1, ..., m_K`` with
``sum(m_k) == M``: ``m_k`` jobs colocate their PSes on host ``k``.  Workers
of each job are spread one-per-host over all hosts *except* the job's PS
host (paper §III, Task placement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import PlacementError

#: Table I — the eight placements studied for 21 concurrent jobs.
TABLE1_PLACEMENTS: Dict[int, Tuple[int, ...]] = {
    1: (21,),
    2: (5, 16),
    3: (10, 11),
    4: (7, 7, 7),
    5: (5, 5, 5, 6),
    6: (4, 4, 4, 4, 5),
    7: (3, 3, 3, 3, 3, 3, 3),
    8: tuple([1] * 21),
}


@dataclass(frozen=True)
class PlacementSpec:
    """A concrete assignment of PS tasks to hosts.

    Attributes:
        groups: ``groups[k]`` = number of jobs whose PS lives on host ``k``
            (hosts are assigned in id order by the scheduler).
    """

    groups: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise PlacementError("placement needs at least one group")
        if any(g < 1 for g in self.groups):
            raise PlacementError(f"group sizes must be >= 1: {self.groups}")

    @property
    def n_jobs(self) -> int:
        return sum(self.groups)

    @property
    def n_ps_hosts(self) -> int:
        return len(self.groups)

    @property
    def max_colocation(self) -> int:
        """The heaviest PS colocation — the contention knob."""
        return max(self.groups)

    def ps_host_of_job(self, job_index: int) -> int:
        """Index (0-based) of the PS host for the ``job_index``-th job."""
        if not 0 <= job_index < self.n_jobs:
            raise PlacementError(
                f"job index {job_index} out of range for {self.n_jobs} jobs"
            )
        cum = 0
        for host_idx, count in enumerate(self.groups):
            cum += count
            if job_index < cum:
                return host_idx
        raise AssertionError("unreachable")

    def jobs_on_host(self, host_idx: int) -> List[int]:
        """Job indices whose PS is on host ``host_idx``."""
        if not 0 <= host_idx < len(self.groups):
            return []
        start = sum(self.groups[:host_idx])
        return list(range(start, start + self.groups[host_idx]))

    def describe(self) -> str:
        """Table I notation, e.g. ``"5, 16"`` or ``"1, ..., 1"``."""
        if len(self.groups) > 6 and len(set(self.groups)) == 1:
            return f"{self.groups[0]}, ..., {self.groups[0]} ({len(self.groups)}x)"
        return ", ".join(str(g) for g in self.groups)

    def __str__(self) -> str:
        return self.describe()


def placement_by_index(index: int, n_jobs: int = 21) -> PlacementSpec:
    """The Table I placement ``index`` (1-8), rescaled if ``n_jobs != 21``.

    Rescaling keeps the *shape*: the same number of groups with sizes
    proportionally scaled, so scaled-down experiments exercise the same
    contention structure.
    """
    if index not in TABLE1_PLACEMENTS:
        raise PlacementError(
            f"unknown placement index {index}; Table I defines {sorted(TABLE1_PLACEMENTS)}"
        )
    groups = TABLE1_PLACEMENTS[index]
    if n_jobs == 21:
        return PlacementSpec(groups)
    if index == 1:
        return PlacementSpec((n_jobs,))
    if index == 8:
        return PlacementSpec(tuple([1] * n_jobs))
    # proportional split over the same number of groups
    k = len(groups)
    if n_jobs < k:
        raise PlacementError(
            f"cannot scale placement #{index} ({k} groups) down to {n_jobs} jobs"
        )
    base, extra = divmod(n_jobs, k)
    scaled = tuple(base + (1 if i < extra else 0) for i in range(k))
    return PlacementSpec(tuple(sorted(scaled)))
