#!/usr/bin/env python
"""Profile the simulator hot path on a paper scenario.

The optimization workflow behind the kernel/transport fast paths:

1. ``python benchmarks/profile_hotpath.py`` — top functions by own-time on
   the fig2 placement scenario (the heaviest FIFO contention case);
2. attack the top entries *without changing any arithmetic* (event order
   and float results are load-bearing — see docs/architecture.md,
   "Performance");
3. re-check ``python benchmarks/bench_simulator_speed.py`` and the
   determinism tests (``tests/experiments/test_determinism_hashes.py``).

Uses :mod:`cProfile` from the standard library; if ``pyinstrument`` is
installed (it is not required), ``--pyinstrument`` renders a wall-clock
call tree instead, which attributes inlined loops better.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

from repro.experiments.config import Architecture, ExperimentConfig, Policy
from repro.experiments.runtime import execute_scenario
from repro.experiments.scenario import Scenario

try:  # optional, never a hard dependency
    import pyinstrument
except ImportError:  # pragma: no cover
    pyinstrument = None

PROFILES = {
    "fig2": lambda it: ExperimentConfig(iterations=it, placement_index=1),
    "tls_one": lambda it: ExperimentConfig(
        iterations=it, placement_index=1, policy=Policy.TLS_ONE,
    ),
    "ring": lambda it: ExperimentConfig(
        iterations=it, n_jobs=8, n_workers=8,
        architecture=Architecture.ALLREDUCE,
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", choices=sorted(PROFILES), default="fig2")
    parser.add_argument("--iterations", type=int, default=10,
                        help="training iterations to simulate (default: 10)")
    parser.add_argument("--top", type=int, default=25,
                        help="rows of profile output (default: 25)")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumtime", "ncalls"],
                        help="pstats sort key (default: tottime)")
    parser.add_argument("--dump", metavar="FILE",
                        help="also write raw pstats data (snakeviz etc.)")
    parser.add_argument("--pyinstrument", action="store_true",
                        help="use pyinstrument if installed")
    args = parser.parse_args(argv)

    scenario = Scenario(config=PROFILES[args.scenario](args.iterations))

    if args.pyinstrument:
        if pyinstrument is None:
            parser.error("pyinstrument is not installed in this environment")
        profiler = pyinstrument.Profiler()
        profiler.start()
        res = execute_scenario(scenario)
        profiler.stop()
        print(profiler.output_text(unicode=True, color=False))
    else:
        pr = cProfile.Profile()
        pr.enable()
        res = execute_scenario(scenario)
        pr.disable()
        stats = pstats.Stats(pr)
        stats.sort_stats(args.sort).print_stats(args.top)
        if args.dump:
            stats.dump_stats(args.dump)
            print(f"raw profile written to {args.dump}")

    rate = res.sim_events / res.wall_seconds
    print(f"{args.scenario}: {res.sim_events:,} events in "
          f"{res.wall_seconds:.3f}s = {rate:,.0f} ev/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
