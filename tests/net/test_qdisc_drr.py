"""Unit tests for the DRR fair-queueing qdisc."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import QdiscError
from repro.net.qdisc import DRRQdisc

from tests.net.helpers import seg


def test_invalid_quantum():
    with pytest.raises(QdiscError):
        DRRQdisc(quantum=0)


def test_single_flow_fifo():
    q = DRRQdisc(quantum=1000)
    a, b = seg(100, sport=5000), seg(100, sport=5000)
    q.enqueue(a, 0.0)
    q.enqueue(b, 0.0)
    assert q.dequeue(0.0) is a
    assert q.dequeue(0.0) is b
    assert q.dequeue(0.0) is None


def test_two_flows_interleave():
    q = DRRQdisc(quantum=100)
    for _ in range(4):
        q.enqueue(seg(100, sport=5000), 0.0)
        q.enqueue(seg(100, sport=5001), 0.0)
    order = []
    while True:
        s = q.dequeue(0.0)
        if s is None:
            break
        order.append(s.flow.src_port)
    # with quantum == segment size, strict alternation
    assert order == [5000, 5001] * 4


def test_fairness_in_bytes_with_unequal_sizes():
    """A flow with big segments must not get more bytes than its share."""
    q = DRRQdisc(quantum=1000)
    for _ in range(50):
        q.enqueue(seg(1000, sport=5000), 0.0)  # big
    for _ in range(100):
        q.enqueue(seg(500, sport=5001), 0.0)  # small
    sent = {5000: 0, 5001: 0}
    for _ in range(60):
        s = q.dequeue(0.0)
        sent[s.flow.src_port] += s.size
    assert abs(sent[5000] - sent[5001]) <= 2000


def test_flow_count_tracks_active_flows():
    q = DRRQdisc()
    assert q.n_flows == 0
    q.enqueue(seg(10, sport=5000), 0.0)
    q.enqueue(seg(10, sport=5001), 0.0)
    assert q.n_flows == 2
    q.dequeue(0.0)
    q.dequeue(0.0)
    assert q.n_flows == 0


def test_segment_larger_than_quantum_still_sends():
    q = DRRQdisc(quantum=10)
    s = seg(1000, sport=5000)
    q.enqueue(s, 0.0)
    assert q.dequeue(0.0) is s


def test_limit_drops():
    q = DRRQdisc(limit=1)
    assert q.enqueue(seg(), 0.0)
    assert not q.enqueue(seg(), 0.0)
    assert q.drops == 1


def test_backlog_accounting():
    q = DRRQdisc()
    q.enqueue(seg(10, sport=5000), 0.0)
    q.enqueue(seg(20, sport=5001), 0.0)
    assert len(q) == 2
    assert q.backlog_bytes == 30


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=1, max_value=2000)),
        max_size=80,
    )
)
def test_property_drr_conserves_all_segments(items):
    """Every enqueued segment is eventually dequeued, per-flow in order."""
    q = DRRQdisc(quantum=777)
    by_flow: dict[int, list] = {}
    for flow_idx, size in items:
        s = seg(size, sport=5000 + flow_idx)
        q.enqueue(s, 0.0)
        by_flow.setdefault(5000 + flow_idx, []).append(s)
    out_by_flow: dict[int, list] = {}
    while True:
        s = q.dequeue(0.0)
        if s is None:
            break
        out_by_flow.setdefault(s.flow.src_port, []).append(s)
    assert out_by_flow == by_flow
    assert len(q) == 0 and q.backlog_bytes == 0
