"""Lightweight simulation tracing.

Components call ``sim.trace.record(kind, **fields)``; when tracing is
disabled (the default) this is a cheap no-op.  Traces power the Figure 4
schedule illustration and several tests.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: a timestamped, typed set of fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError as exc:  # pragma: no cover - attribute protocol
            raise AttributeError(name) from exc


class Tracer:
    """Collects :class:`TraceRecord` entries, optionally filtered by kind."""

    def __init__(self, enabled: bool = False, kinds: Optional[set[str]] = None) -> None:
        self.enabled = enabled
        self.kinds = kinds  # None = all kinds
        self.records: List[TraceRecord] = []
        self._now: Callable[[], float] = lambda: 0.0

    def bind_clock(self, now_fn: Callable[[], float]) -> None:
        """Attach the simulator clock (done lazily to avoid a cycle)."""
        self._now = now_fn

    def record(self, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self.records.append(TraceRecord(self._now(), kind, fields))

    @contextmanager
    def span(self, kind: str, **fields: Any) -> Iterator[None]:
        """Record a ``kind.begin`` / ``kind.end`` pair around a block.

        The end record carries a ``duration`` field (simulated seconds).
        Kind filtering applies to the *base* kind, so enabling
        ``kinds={"tc_reconcile"}`` captures both edge records.  A no-op
        when tracing is disabled.
        """
        enabled = self.enabled and (self.kinds is None or kind in self.kinds)
        if not enabled:
            yield
            return
        start = self._now()
        self.records.append(TraceRecord(start, kind + ".begin", dict(fields)))
        try:
            yield
        finally:
            end = self._now()
            end_fields = dict(fields)
            end_fields["duration"] = end - start
            self.records.append(TraceRecord(end, kind + ".end", end_fields))

    def of_kind(self, kind: str) -> Iterator[TraceRecord]:
        return (r for r in self.records if r.kind == kind)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
