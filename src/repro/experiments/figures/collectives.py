"""TensorLights generality study: ring all-reduce and mixed clusters.

Not a paper figure — the paper evaluates PS jobs only.  This sweep asks
whether end-host per-job priorities still help when the contention is
ring-shaped: every policy (FIFO, TLs-One, TLs-RR) runs the same workload
on an all-reduce-only cluster and on a mixed PS + all-reduce cluster
(see :class:`~repro.experiments.config.Architecture`).  Reported per
cell: average JCT, JCT normalized to the same architecture's FIFO run,
makespan, and the mean barrier wait — the quantity TensorLights
serializes away for PS jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.campaign import Campaign
from repro.experiments.config import Architecture, ExperimentConfig, Policy
from repro.experiments.figures.common import ALL_POLICIES, base_config, submit
from repro.experiments.report import TextTable
from repro.experiments.runtime import ExperimentResult
from repro.experiments.scenario import Scenario

DEFAULT_ARCHITECTURES = (Architecture.ALLREDUCE, Architecture.MIXED)


@dataclass
class CollectivesResult:
    """The architecture x policy grid of one generality sweep."""

    #: (architecture, policy) -> result
    results: Dict[Tuple[Architecture, Policy], ExperimentResult]

    def avg_jct(self, arch: Architecture, policy: Policy) -> float:
        return self.results[(arch, policy)].avg_jct

    def vs_fifo(self, arch: Architecture, policy: Policy) -> float:
        """``avg JCT / same-architecture FIFO avg JCT`` (< 1.0 = faster)."""
        return (self.results[(arch, policy)].avg_jct
                / self.results[(arch, Policy.FIFO)].avg_jct)

    def render(self) -> str:
        """The text report (one row per architecture x policy cell)."""
        table = TextTable(
            ["Architecture", "Policy", "Avg JCT (s)", "vs FIFO",
             "Makespan (s)", "Barrier wait (s)"],
            title="TensorLights generality: ring all-reduce and mixed "
                  "PS+all-reduce clusters",
        )
        archs = sorted({k[0] for k in self.results}, key=lambda a: a.value)
        policies = sorted({k[1] for k in self.results}, key=lambda p: p.value)
        for arch in archs:
            for policy in policies:
                cell = self.results.get((arch, policy))
                if cell is None:
                    continue
                has_fifo = (arch, Policy.FIFO) in self.results
                table.add_row(
                    arch.value,
                    policy.value,
                    cell.avg_jct,
                    self.vs_fifo(arch, policy) if has_fifo else "-",
                    cell.makespan,
                    float(cell.barrier_wait_means().mean()),
                )
        return table.render()


def scenarios(
    base: Optional[ExperimentConfig] = None,
    architectures: Sequence[Architecture] = DEFAULT_ARCHITECTURES,
    policies: Sequence[Policy] = ALL_POLICIES,
    **overrides,
) -> List[Scenario]:
    """The architecture x policy grid as a flat tagged scenario list."""
    cfg = base_config(base, **overrides)
    out: List[Scenario] = []
    for arch in architectures:
        for policy in policies:
            run_cfg = cfg.replace(architecture=arch, policy=policy)
            out.append(Scenario(config=run_cfg).with_tags(
                architecture=arch.value, policy=policy.value,
            ))
    return out


def generate(
    base: Optional[ExperimentConfig] = None,
    architectures: Sequence[Architecture] = DEFAULT_ARCHITECTURES,
    policies: Sequence[Policy] = ALL_POLICIES,
    campaign: Optional[Campaign] = None,
    **overrides,
) -> CollectivesResult:
    """Run the generality sweep and collect the grid."""
    architectures = list(architectures)
    policies = list(policies)
    grid = scenarios(base, architectures, policies, **overrides)
    results = submit(grid, campaign)
    keyed: Dict[Tuple[Architecture, Policy], ExperimentResult] = {}
    for scenario, result in zip(grid, results):
        key = (Architecture(scenario.tag("architecture")),
               Policy(scenario.tag("policy")))
        keyed[key] = result
    return CollectivesResult(results=keyed)
