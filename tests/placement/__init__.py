"""Tests for the contention-aware placement subsystem."""
