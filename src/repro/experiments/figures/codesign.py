"""The placement-vs-TensorLights co-design study (ROADMAP item 1).

The paper fixes placement (Table I) and varies the end-host policy; the
:mod:`repro.placement` subsystem fixes the policy axis's blind spot and
varies placement.  This study runs the full matrix

    placement policy {oblivious, contention-aware, ...}
        x  scheduling policy {FIFO, TLs-One, TLs-RR}
        x  a seed sweep

as ONE :class:`~repro.experiments.campaign.Campaign` and asks the
question neither axis can answer alone: *does end-host scheduling still
earn its keep once placement stops creating the contention it cleans
up?*  Every cell is reported as a speedup over the oblivious-FIFO
baseline with a paired bootstrap CI (:mod:`repro.analysis.ci`), plus a
Jain fairness index over per-job JCTs.

:meth:`CodesignReport.direction_ok` is the CI smoke check (the exit code
of ``tensorlights codesign``): the best *combined* cell must be at least
as fast as the weaker of the two single-axis fixes — co-design may beat
or tie the best single axis, but if combining them is *worse than both*,
the subsystem composed wrongly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.ci import ConfidenceInterval, bootstrap_ratio_ci
from repro.analysis.fairness import jain_index
from repro.errors import ConfigError
from repro.experiments.campaign import Campaign
from repro.experiments.config import ExperimentConfig, Policy
from repro.experiments.figures.common import base_config
from repro.experiments.report import TextTable
from repro.experiments.runtime import ExperimentResult
from repro.experiments.scenario import Scenario

#: Default placement axis: the oblivious baseline plus both
#: fingerprint-driven policies (duty-cycle balancing and CASSINI-style
#: phase interleaving).
DEFAULT_PLACEMENTS: Tuple[str, ...] = (
    "oblivious", "least-contended", "phase-interleave",
)

#: Quick (CI smoke) placement axis: baseline plus one smart policy.
QUICK_PLACEMENTS: Tuple[str, ...] = ("oblivious", "phase-interleave")

#: Default scheduling-policy axis — the paper's three.
DEFAULT_POLICIES: Tuple[Policy, ...] = (
    Policy.FIFO, Policy.TLS_ONE, Policy.TLS_RR,
)

#: Slack on the direction check: speedups are seed-sweep means.
DIRECTION_EPSILON = 0.02


def _cell_tag(placement: str, policy: Policy) -> str:
    return f"{placement}|{policy.value}"


@dataclass
class CodesignReport:
    """The co-design matrix: speedups over oblivious-FIFO, with CIs.

    ``cells`` maps ``(placement_policy, policy)`` to the seed-ordered
    result list of that cell.  ``render()`` and ``to_csv()`` share one
    :class:`TextTable`, so the printed study and the CI artifact can
    never disagree.
    """

    config: ExperimentConfig
    placements: Tuple[str, ...]
    policies: Tuple[Policy, ...]
    seeds: Tuple[int, ...]
    cells: Dict[Tuple[str, Policy], List[ExperimentResult]]
    confidence: float = 0.95
    cache_hits: int = 0
    executed: int = 0
    wall_seconds: float = 0.0
    #: fingerprint cache traffic of the generating process (observability
    #: only — worker processes profile into their own stores)
    fingerprint_hits: int = 0
    fingerprint_misses: int = 0

    def jcts(self, placement: str, policy: Policy) -> List[float]:
        """Per-seed average JCTs of one cell (seed-sweep order)."""
        return [r.avg_jct for r in self.cells[(placement, policy)]]

    def speedup(self, placement: str, policy: Policy) -> ConfidenceInterval:
        """Paired bootstrap CI of ``baseline JCT / cell JCT`` over seeds.

        Above 1.0 the cell beats the oblivious-FIFO baseline.  Numerator
        and denominator of one seed come from the same sweep position,
        so the ratio resamples pairwise.
        """
        baseline = self.jcts("oblivious", Policy.FIFO)
        return bootstrap_ratio_ci(
            baseline, self.jcts(placement, policy),
            confidence=self.confidence,
        )

    def fairness(self, placement: str, policy: Policy) -> float:
        """Mean Jain index over per-job JCTs, averaged over the sweep."""
        return float(np.mean([
            jain_index(list(r.jcts.values()))
            for r in self.cells[(placement, policy)]
        ]))

    # -- the three co-design quantities ------------------------------------

    def _smart(self) -> Tuple[str, ...]:
        return tuple(p for p in self.placements if p != "oblivious")

    def _tls(self) -> Tuple[Policy, ...]:
        return tuple(p for p in self.policies if p != Policy.FIFO)

    def placement_only_speedup(self) -> float:
        """Best smart-placement speedup under plain FIFO."""
        return max(
            self.speedup(p, Policy.FIFO).estimate for p in self._smart()
        )

    def tls_only_speedup(self) -> float:
        """Best TensorLights speedup under oblivious placement."""
        return max(
            self.speedup("oblivious", pol).estimate for pol in self._tls()
        )

    def combined_speedup(self) -> float:
        """Best speedup with both axes engaged."""
        return max(
            self.speedup(p, pol).estimate
            for p in self._smart() for pol in self._tls()
        )

    def direction_ok(self) -> bool:
        """Does co-design compose?

        True when the best combined cell is at least as fast (within
        :data:`DIRECTION_EPSILON`) as the weaker single-axis fix —
        i.e. adding the second axis never drops the study below
        ``min(placement-only, TLs-only)``.
        """
        floor = min(self.placement_only_speedup(), self.tls_only_speedup())
        return self.combined_speedup() >= floor - DIRECTION_EPSILON

    # -- rendering ---------------------------------------------------------

    def _table(self) -> TextTable:
        table = TextTable(
            ["Placement", "Policy", "Avg JCT (s)",
             f"Speedup vs obl-FIFO ({int(self.confidence * 100)}% CI)",
             "Jain fairness"],
            title=(
                f"Placement x TensorLights co-design "
                f"(placement #{self.config.placement_index} baseline, "
                f"seeds {list(self.seeds)})"
            ),
        )
        for placement in self.placements:
            for policy in self.policies:
                ci = self.speedup(placement, policy)
                table.add_row(
                    placement,
                    policy.value,
                    float(np.mean(self.jcts(placement, policy))),
                    f"{ci.estimate:.3f} [{ci.low:.3f}, {ci.high:.3f}]",
                    f"{self.fairness(placement, policy):.4f}",
                )
        return table

    def render(self) -> str:
        """The matrix table plus the three-way co-design verdict."""
        verdict = (
            "direction OK: combined >= min(placement-only, TLs-only)"
            if self.direction_ok()
            else "direction NOT reproduced: combining the axes lost ground"
        )
        lines = [
            self._table().render(),
            "",
            f"placement-only {self.placement_only_speedup():.3f}x | "
            f"TLs-only {self.tls_only_speedup():.3f}x | "
            f"combined {self.combined_speedup():.3f}x",
            verdict,
        ]
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The same matrix as CSV (identical headers and formatting)."""
        return self._table().to_csv()


def generate(
    base: Optional[ExperimentConfig] = None,
    placements: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[Policy]] = None,
    seeds: Optional[Sequence[int]] = None,
    campaign: Optional[Campaign] = None,
    quick: bool = False,
    confidence: float = 0.95,
    **overrides,
) -> CodesignReport:
    """Run the co-design matrix as one campaign submission.

    Args:
        base: starting configuration (default: ``ExperimentConfig()``
            pinned to the paper's contended placement #1; under
            ``quick`` a 6-job/5-host miniature of the same shape).
        placements: placement-policy axis; must include ``"oblivious"``
            and at least one smart policy (default:
            :data:`DEFAULT_PLACEMENTS`, or :data:`QUICK_PLACEMENTS`
            under ``quick``).
        policies: scheduling-policy axis; must include ``Policy.FIFO``
            and at least one TensorLights mode (default:
            :data:`DEFAULT_POLICIES`).
        seeds: the seed sweep (needs >= 2 for the paired bootstrap;
            default: three consecutive seeds, two under ``quick``).
        campaign: campaign to submit through (parallel executor /
            result cache); default: serial, uncached.
        quick: CI smoke scale — the contended miniature, two placements,
            two seeds, a few iterations.
        confidence: CI level for the bootstrap speedups.
    """
    from repro.placement.store import FingerprintStore

    if quick:
        if base is None:
            # 6 jobs on 5 hosts: every PS colocates somewhere even under
            # smart placement, so phase interleaving has real work to do
            # — and placement #1 (all six PSes on one uplink) gives the
            # oblivious baseline the contention the paper studies.
            base = ExperimentConfig.tiny(n_jobs=6, n_workers=4, iterations=6)
        if placements is None:
            placements = QUICK_PLACEMENTS
        if seeds is None:
            seeds = (base.seed, base.seed + 1)
    cfg = base_config(base, **overrides)
    if "placement_index" not in overrides:
        cfg = cfg.replace(placement_index=1)

    placement_axis = tuple(placements) if placements is not None else DEFAULT_PLACEMENTS
    policy_axis = tuple(policies) if policies is not None else DEFAULT_POLICIES
    seed_sweep = (tuple(seeds) if seeds is not None
                  else (cfg.seed, cfg.seed + 1, cfg.seed + 2))

    if "oblivious" not in placement_axis:
        raise ConfigError("the co-design study needs the oblivious baseline")
    if len(placement_axis) < 2:
        raise ConfigError("the co-design study needs a smart placement "
                          "next to the oblivious baseline")
    if Policy.FIFO not in policy_axis:
        raise ConfigError("the co-design study needs the FIFO baseline")
    if all(p not in (Policy.TLS_ONE, Policy.TLS_RR) for p in policy_axis):
        raise ConfigError("the co-design study needs a TensorLights policy")
    if len(seed_sweep) < 2:
        raise ConfigError(
            f"the paired bootstrap needs >= 2 seeds, got {list(seed_sweep)}"
        )

    scenarios: List[Scenario] = []
    for seed in seed_sweep:
        for placement in placement_axis:
            for policy in policy_axis:
                scenarios.append(
                    Scenario(config=cfg.replace(
                        seed=seed,
                        placement_policy=placement,
                        policy=policy,
                    )).with_tags(
                        study="codesign",
                        cell=_cell_tag(placement, policy),
                        placement_policy=placement,
                        policy=policy.value,
                        seed=seed,
                    )
                )

    store = FingerprintStore.default()
    hits0, misses0 = store.hits, store.misses
    camp = campaign if campaign is not None else Campaign()
    outcome = camp.run(scenarios)
    by_cell = outcome.by_tag("cell")

    cells: Dict[Tuple[str, Policy], List[ExperimentResult]] = {
        (placement, policy): by_cell[_cell_tag(placement, policy)]
        for placement in placement_axis for policy in policy_axis
    }
    return CodesignReport(
        config=cfg,
        placements=placement_axis,
        policies=policy_axis,
        seeds=seed_sweep,
        cells=cells,
        confidence=confidence,
        cache_hits=outcome.cache_hits,
        executed=outcome.executed,
        wall_seconds=outcome.wall_seconds,
        fingerprint_hits=store.hits - hits0,
        fingerprint_misses=store.misses - misses0,
    )
