"""Tests for the simulation-wide metrics registry (sim.metrics)."""

import pytest

from repro.errors import ConfigError
from repro.experiments import ExperimentConfig, Policy, Scenario
from repro.experiments.runtime import execute_scenario, materialize
from repro.sim import Simulator
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry

MICRO = ExperimentConfig.tiny(n_jobs=2, n_workers=2, iterations=3)


# ---------------------------------------------------------------- instruments


def test_counter_increments_and_rejects_decrease():
    c = Counter("n", ())
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ConfigError):
        c.inc(-1.0)


def test_gauge_set_inc_dec():
    g = Gauge("g", ())
    g.set(5.0)
    g.inc(2.0)
    g.dec()
    assert g.value == 6.0


def test_histogram_observe_and_snapshot_dict():
    h = Histogram("h", (), buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 3
    assert h.mean == pytest.approx(55.5 / 3)
    d = h.to_dict()
    assert d["min"] == 0.5 and d["max"] == 50.0
    # buckets are cumulative upper bounds; everything lands in +Inf
    assert d["buckets"] == {"1": 1, "10": 2, "+Inf": 3}


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ConfigError):
        Histogram("h", (), buckets=(10.0, 1.0))
    with pytest.raises(ConfigError):
        Histogram("h", (), buckets=(1.0, 1.0))


def test_empty_histogram_mean_is_zero():
    h = Histogram("h", ())
    assert h.mean == 0.0
    assert "min" not in h.to_dict()


def test_histogram_percentile_interpolates_within_bucket():
    h = Histogram("h", (), buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0):
        h.observe(v)
    # target rank 2 of 4 lands at the (1, 2] bucket's cumulative count:
    # interpolate from the previous bound toward 2.0
    p50 = h.percentile(0.5)
    assert 1.0 <= p50 <= 2.0
    # q=1 saturates every bucket -> the observed max, not a bucket bound
    assert h.percentile(1.0) == 3.0
    assert h.percentile(0.0) == 0.5


def test_histogram_percentile_clamps_to_observed_range():
    # One observation deep inside a wide bucket: interpolation alone
    # would answer a bucket-edge estimate; the clamp pins it to the data.
    h = Histogram("h", (), buckets=(100.0,))
    h.observe(7.0)
    assert h.percentile(0.5) == 7.0
    assert h.percentile(0.99) == 7.0


def test_histogram_percentile_inf_bucket_returns_max():
    h = Histogram("h", (), buckets=(1.0,))
    for v in (0.5, 50.0, 60.0):
        h.observe(v)
    # ranks beyond the last bound live in +Inf -> the observed max
    assert h.percentile(0.9) == 60.0


def test_histogram_percentile_empty_and_bad_q():
    h = Histogram("h", ())
    assert h.percentile(0.5) == 0.0
    h.observe(1.0)
    with pytest.raises(ConfigError):
        h.percentile(1.5)
    with pytest.raises(ConfigError):
        h.percentile(-0.1)


# ---------------------------------------------------------------- registry


def test_registry_get_or_create_identity():
    reg = MetricsRegistry(enabled=True)
    a = reg.counter("tx", host="h00")
    b = reg.counter("tx", host="h00")
    c = reg.counter("tx", host="h01")
    assert a is b
    assert a is not c
    assert len(reg) == 2


def test_registry_type_conflict_raises():
    reg = MetricsRegistry(enabled=True)
    reg.counter("tx")
    with pytest.raises(ConfigError, match="already registered"):
        reg.gauge("tx")


def test_snapshot_schema_and_label_rendering():
    reg = MetricsRegistry(enabled=True)
    reg.counter("drops", host="h00", band="2").inc(3)
    reg.gauge("depth").set(7.0)
    reg.histogram("lat", buckets=(1.0,)).observe(0.5)
    snap = reg.snapshot()
    assert set(snap) == {"counters", "gauges", "histograms"}
    # labels render sorted by key: band before host
    assert snap["counters"] == {"drops{band=2,host=h00}": 3.0}
    assert snap["gauges"] == {"depth": 7.0}
    assert snap["histograms"]["lat"]["count"] == 1


def test_clear_resets_types_too():
    reg = MetricsRegistry(enabled=True)
    reg.counter("x")
    reg.clear()
    assert len(reg) == 0
    reg.gauge("x")  # no stale type registration


def test_span_observes_simulated_duration():
    reg = MetricsRegistry(enabled=True)
    clock = [0.0]
    reg.bind_clock(lambda: clock[0])
    with reg.span("op_seconds", stage="setup"):
        clock[0] = 2.5
    h = reg.histogram("op_seconds", stage="setup")
    assert h.count == 1
    assert h.sum == pytest.approx(2.5)


def test_span_disabled_is_a_noop():
    reg = MetricsRegistry()
    with reg.span("op_seconds"):
        pass
    assert len(reg) == 0


def test_simulator_owns_a_disabled_registry():
    sim = Simulator()
    assert isinstance(sim.metrics, MetricsRegistry)
    assert not sim.metrics.enabled


# ---------------------------------------------------------------- integration


def test_materialize_with_metrics_collects_a_snapshot():
    cfg = MICRO.replace(policy=Policy.TLS_ONE)
    result = materialize(Scenario(config=cfg), metrics=True).run()
    snap = result.metrics_snapshot
    assert set(snap) == {"counters", "gauges", "histograms"}
    counters, gauges, hists = (
        snap["counters"], snap["gauges"], snap["histograms"]
    )
    # NIC hot-path counters, scraped cumulative gauges, DL barrier spans,
    # and the TensorLights controller all reported in.
    assert any(k.startswith("nic_tx_bytes{") for k in counters)
    assert any(k.startswith("transport_messages_delivered{") for k in counters)
    assert any(k.startswith("nic_bytes_tx_total{") for k in gauges)
    assert any(k.startswith("dl_barrier_wait_seconds{") for k in hists)
    assert gauges.get("tl_reconfigurations_total", 0) >= 0


def test_metrics_do_not_change_the_simulated_result():
    """The invariant behind materialize(metrics=True): pure observation.

    Content hashes must be identical with the registry on or off — the
    snapshot lives outside the serialized schema.
    """
    from repro.experiments.export import result_content_hash

    plain = execute_scenario(Scenario(config=MICRO))
    observed = materialize(Scenario(config=MICRO), metrics=True).run()
    assert result_content_hash(plain) == result_content_hash(observed)
    assert plain.metrics_snapshot == {}
    assert observed.metrics_snapshot  # non-empty, but hash-invisible
