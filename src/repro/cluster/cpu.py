"""Processor-sharing CPU model.

A host CPU with ``cores`` cores runs any number of concurrent *jobs* (in
the queueing-theory sense: one compute request each).  When ``n`` jobs are
active, each progresses at rate ``min(1, cores / n)`` core-seconds per
second — the classic egalitarian processor-sharing model, a good fit for
CPU-bound workers time-shared by the OS scheduler.

Completion times are recomputed whenever the active set changes.  Busy
core-time is accumulated for the vmstat-style utilization telemetry.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.primitives import _Suspend
from repro.sim.process import Waitable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class _Job:
    __slots__ = ("jid", "remaining", "token")

    def __init__(self, jid: int, demand: float, token: _Suspend) -> None:
        self.jid = jid
        self.remaining = demand
        self.token = token


class ProcessorSharingCPU:
    """An M-core processor-sharing server."""

    def __init__(self, sim: "Simulator", cores: int = 1, name: str = "cpu") -> None:
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        self.sim = sim
        self.cores = cores
        self.name = name
        self._jobs: Dict[int, _Job] = {}
        self._ids = itertools.count()
        self._last_update = 0.0
        self._next_event = None
        self.busy_core_time = 0.0  # core-seconds of actual work done
        self.speed = 1.0  # fault-injection straggler knob (1.0 = healthy)

    # -- public API -------------------------------------------------------

    def run(self, demand_core_seconds: float) -> Waitable:
        """Submit ``demand_core_seconds`` of work; yields when finished.

        Zero-demand requests complete immediately (next tick).
        """
        if demand_core_seconds < 0:
            raise SimulationError(f"negative CPU demand: {demand_core_seconds}")
        token = _Suspend()
        if demand_core_seconds == 0:
            token.complete(self.sim)
            return token
        self._advance()
        job = _Job(next(self._ids), demand_core_seconds, token)
        self._jobs[job.jid] = job
        self._reschedule()
        return token

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    @property
    def rate_per_job(self) -> float:
        """Current per-job service rate in core-seconds per second."""
        n = len(self._jobs)
        if n == 0:
            return 0.0
        return min(1.0, self.cores / n) * self.speed

    def set_speed(self, speed: float) -> None:
        """Scale every job's service rate (fault-injection straggler).

        In-progress work is advanced at the old speed up to now, then
        completion events are re-derived at the new speed.
        """
        if speed <= 0:
            raise SimulationError(f"CPU speed must be > 0, got {speed}")
        self._advance()
        self.speed = speed
        self._reschedule()

    def utilization_snapshot(self) -> float:
        """Cumulative busy core-seconds (including work in progress)."""
        self._advance()
        return self.busy_core_time

    # -- internals ------------------------------------------------------------

    def _advance(self) -> None:
        """Apply progress between the last update and now."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        jobs = self._jobs
        if dt <= 0 or not jobs:
            return
        # rate_per_job inlined (same float expression; this runs on every
        # CPU completion and submission).
        n = len(jobs)
        rate = min(1.0, self.cores / n) * self.speed
        done = dt * rate
        finished = None
        for job in jobs.values():
            job.remaining -= done
            if job.remaining <= 1e-12:
                if finished is None:
                    finished = [job]
                else:
                    finished.append(job)
        self.busy_core_time += done * n
        if finished is not None:
            for job in finished:
                del jobs[job.jid]
                job.token.complete(self.sim)

    def _reschedule(self) -> None:
        """(Re)arm the completion event for the earliest-finishing job."""
        if self._next_event is not None:
            self.sim.cancel(self._next_event)
            self._next_event = None
        jobs = self._jobs
        if not jobs:
            return
        n = len(jobs)
        rate = min(1.0, self.cores / n) * self.speed
        shortest = None
        for job in jobs.values():
            r = job.remaining
            if shortest is None or r < shortest:
                shortest = r
        eta = shortest / rate
        self._next_event = self.sim.schedule(eta, self._on_completion)

    def _on_completion(self) -> None:
        self._next_event = None
        self._advance()
        self._reschedule()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CPU {self.name} cores={self.cores} active={len(self._jobs)}>"
