"""Messages and segments.

Applications exchange :class:`Message` objects (a model update, a gradient
update).  The transport slices a message into :class:`Segment` objects —
the unit the NIC serializes.  Segment size is configurable; it plays the
role of the TCP segment/MTU, scaled up so that simulations stay fast while
preserving the interleaving granularity that matters (see DESIGN.md §5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import NetworkError
from repro.net.addressing import FlowKey

_message_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """An application-level transfer over one flow.

    Attributes:
        flow: sender -> receiver addressing.
        size: payload bytes.
        kind: application tag (``"model_update"``, ``"gradient_update"``...).
        meta: free-form application metadata (job id, iteration, ...).
        created_at: simulated send time (stamped by the transport).
        delivered_at: simulated full-reassembly time at the receiver.
    """

    flow: FlowKey
    size: int
    kind: str = "data"
    meta: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    created_at: float = -1.0
    delivered_at: float = -1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise NetworkError(f"message size must be positive, got {self.size}")

    @property
    def latency(self) -> float:
        """Delivery latency; valid once delivered."""
        if self.delivered_at < 0 or self.created_at < 0:
            raise NetworkError("message not delivered yet")
        return self.delivered_at - self.created_at


class Segment:
    """One NIC-serializable slice of a message.

    ``flow`` is copied out of the message at construction: it is read on
    every classify/enqueue/transport hop, and a direct slot beats a
    property + attribute chase on the per-segment hot path.  A plain
    class rather than a dataclass: the generated ``__init__`` +
    ``__post_init__`` pair is two call frames per segment, and segments
    are identity objects (never compared by value).
    """

    __slots__ = ("message", "index", "size", "is_last", "flow")

    def __init__(self, message: Message, index: int, size: int,
                 is_last: bool) -> None:
        self.message = message
        self.index = index
        self.size = size
        self.is_last = is_last
        self.flow = message.flow

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Seg msg={self.message.msg_id} #{self.index} {self.size}B>"


def segment_message(message: Message, segment_bytes: int) -> list[Segment]:
    """Slice ``message`` into segments of at most ``segment_bytes``."""
    if segment_bytes <= 0:
        raise NetworkError(f"segment_bytes must be positive, got {segment_bytes}")
    segments: list[Segment] = []
    append = segments.append
    remaining = message.size
    index = 0
    while remaining > segment_bytes:
        append(Segment(message, index, segment_bytes, False))
        remaining -= segment_bytes
        index += 1
    append(Segment(message, index, remaining, True))
    return segments
