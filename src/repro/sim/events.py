"""Event heap for the simulation kernel.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a global
monotone counter so that events scheduled earlier run earlier among ties —
this makes every simulation fully deterministic for a given call sequence.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: Default event priority.  Lower runs first among same-time events.
PRIORITY_NORMAL = 0
#: Used by the kernel for bookkeeping that must run before normal events.
PRIORITY_HIGH = -10
#: Used for "end of tick" accounting (e.g. telemetry samplers).
PRIORITY_LOW = 10


class Event:
    """A scheduled callback.

    Instances are created through :meth:`EventQueue.push` /
    :meth:`Simulator.schedule`; user code normally only keeps a reference
    in order to :meth:`cancel` it.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped.

        Cancellation is O(1); the heap entry is lazily discarded.
        """
        self.cancelled = True
        self.fn = None  # drop references early
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} prio={self.priority} seq={self.seq} {state}>"


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        ev = Event(time, priority, next(self._counter), fn, args)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`SimulationError` when empty.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        raise SimulationError("pop from empty event queue")

    def cancel(self, ev: Event) -> None:
        """Cancel a pending event (idempotent)."""
        if not ev.cancelled:
            ev.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
