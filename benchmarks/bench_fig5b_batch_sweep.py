"""Figure 5b: normalized JCT vs local batch size (placement #1).

Paper shape: a smaller local batch means more frequent updates, heavier
contention, and a larger TensorLights improvement (paper: 31 % for
TLs-One / 17 % for TLs-RR at the smallest batch); large batches are
compute-bound and show parity.
"""

from conftest import run_once

from repro.experiments.config import Policy


def test_fig5b_batch_size_sweep(benchmark, bench_config, bench_campaign):
    from repro.experiments.figures import fig5b

    result = run_once(benchmark, lambda: fig5b.generate(bench_config, campaign=bench_campaign))
    print()
    print(result.render())

    batches = sorted(result.results)
    smallest, largest = batches[0], batches[-1]
    # Shape: the improvement at the smallest batch exceeds the improvement
    # at the largest batch (contention intensity knob).
    assert (
        result.mean_normalized(smallest, Policy.TLS_ONE)
        < result.mean_normalized(largest, Policy.TLS_ONE)
    )
    assert result.mean_normalized(smallest, Policy.TLS_ONE) < 0.9
    # Shape: compute-bound at the largest batch — parity.
    assert 0.93 < result.mean_normalized(largest, Policy.TLS_ONE) < 1.07
